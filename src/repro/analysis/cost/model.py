"""Cost vectors and the comparable :class:`CostEstimate`.

The model follows Ahrens & Kjolstad's asymptotic-cost-model idea
(PAPERS.md): a schedule's cost is a small vector of machine-independent
resource counts — arithmetic by dtype class, memory operations, loop
bookkeeping, library-call invocations — plus a *sequential-work* axis
that discounts iterations the target backend can actually run in
parallel. Estimates are comparable through a **dominance partial
order**: estimate ``a`` dominates ``b`` when ``a`` is no worse on every
axis. Dominance is what makes measurement-free pruning honest — a
dominated candidate can only be pruned, never preferred — while the
scalar :attr:`CostEstimate.time_proxy` gives a total order for ranking.

``op_category`` is the single classification shared by the static walker
(`count.py`) and the interpreter's dynamic ``REPRO_COUNT_OPS`` oracle,
so the two sides count the same events by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir import expr as E

#: integer counting axes, in reporting order
COUNT_FIELDS = ("flops", "int_ops", "loads", "stores", "reduces",
                "lib_calls", "iters")

#: modeled sequential cost of one library-kernel invocation, in scalar-op
#: units (launch/dispatch overhead; the kernel's interior is vendor code
#: and is deliberately not counted — neither statically nor dynamically)
LIB_CALL_SEQ = 32.0


def op_category(e: E.Expr) -> Optional[str]:
    """The counting axis one evaluation of ``e``'s *root node* lands on
    (children are counted separately), or None for free nodes (constants,
    variables, casts, ``IfExpr`` selection).

    This mirrors the interpreter's flop accounting exactly: float
    add/sub/mul/min/max and every real-division/intrinsic are flops;
    integer/boolean arithmetic, comparisons and logic are int ops.
    """
    if isinstance(e, E.Load):
        return "loads"
    if isinstance(e, (E.Intrinsic, E.RealDiv)):
        return "flops"
    if isinstance(e, (E.Add, E.Sub, E.Mul, E.Min, E.Max)):
        return "flops" if e.dtype.is_float else "int_ops"
    if isinstance(e, (E.FloorDiv, E.Mod, E.LNot, E.LAnd, E.LOr, E.CmpOp)):
        return "int_ops"
    return None


class Counts:
    """A vector of operation counts plus the derived sequential work.

    ``seq`` tracks the *sequential* schedule length: every counted op
    contributes 1, but a loop body multiplied by a parallelised loop
    scales ``seq`` by the residual iterations per hardware lane instead
    of the full trip count. ``by_tensor`` carries per-tensor element
    traffic (reads, writes) for the memory report.
    """

    __slots__ = COUNT_FIELDS + ("seq", "by_tensor")

    def __init__(self):
        for f in COUNT_FIELDS:
            setattr(self, f, 0)
        self.seq = 0.0
        self.by_tensor: Dict[str, List[int]] = {}

    # -- building ----------------------------------------------------------
    def note(self, field: str, n: int = 1, seq: Optional[float] = None):
        setattr(self, field, getattr(self, field) + n)
        self.seq += float(n) if seq is None else seq

    def tensor_read(self, name: str, n: int = 1):
        self.by_tensor.setdefault(name, [0, 0])[0] += n

    def tensor_write(self, name: str, n: int = 1):
        self.by_tensor.setdefault(name, [0, 0])[1] += n

    def add(self, other: "Counts"):
        for f in COUNT_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.seq += other.seq
        for name, (r, w) in other.by_tensor.items():
            row = self.by_tensor.setdefault(name, [0, 0])
            row[0] += r
            row[1] += w

    def add_scaled(self, other: "Counts", k: float, seq_k: float):
        """``self += other * k``, with the ``seq`` axis scaled by the
        (possibly smaller) effective sequential trip count ``seq_k``.
        ``k`` is the trip count of an enclosing loop, or a fractional
        guard frequency — counts may become non-integral (still sound
        upper bounds)."""
        for f in COUNT_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f) * k)
        self.seq += other.seq * seq_k
        for name, (r, w) in other.by_tensor.items():
            row = self.by_tensor.setdefault(name, [0, 0])
            row[0] += r * k
            row[1] += w * k

    @staticmethod
    def maxed(a: "Counts", b: "Counts") -> "Counts":
        """Componentwise max — the sound merge of ``If`` branches."""
        out = Counts()
        for f in COUNT_FIELDS:
            setattr(out, f, max(getattr(a, f), getattr(b, f)))
        out.seq = max(a.seq, b.seq)
        for name in set(a.by_tensor) | set(b.by_tensor):
            ra = a.by_tensor.get(name, [0, 0])
            rb = b.by_tensor.get(name, [0, 0])
            out.by_tensor[name] = [max(ra[0], rb[0]), max(ra[1], rb[1])]
        return out

    # -- queries -----------------------------------------------------------
    def total_ops(self) -> int:
        return sum(getattr(self, f) for f in COUNT_FIELDS)

    def same_totals(self, other: "Counts") -> bool:
        """True when both vectors count the identical work — the condition
        under which an ``If``'s branch max is still *exact*."""
        return all(getattr(self, f) == getattr(other, f)
                   for f in COUNT_FIELDS) and self.by_tensor == other.by_tensor

    def as_dict(self) -> Dict[str, object]:
        d = {f: getattr(self, f) for f in COUNT_FIELDS}
        d["seq"] = round(self.seq, 2)
        return d

    def __repr__(self):  # pragma: no cover - debugging aid
        body = ", ".join(f"{f}={getattr(self, f)}" for f in COUNT_FIELDS
                         if getattr(self, f))
        return f"Counts({body}, seq={self.seq:.0f})"


class LoopCost:
    """Per-loop-nest report row: trip count, per-iteration work, and how
    the loop's iterations map onto the target's parallel hardware."""

    __slots__ = ("sid", "iter_var", "trip", "exact", "seq_trip", "execs",
                 "parallel", "vectorize", "per_iter_ops", "total_ops",
                 "stmt")

    def __init__(self, stmt, trip: int, exact: bool, seq_trip: float,
                 execs: int, per_iter_ops: int):
        self.stmt = stmt
        self.sid = stmt.sid
        self.iter_var = stmt.iter_var
        self.trip = trip
        self.exact = exact
        #: iterations that remain sequential after parallel mapping
        self.seq_trip = seq_trip
        #: how many times the loop statement itself executes
        self.execs = execs
        self.parallel = stmt.property.parallel
        self.vectorize = bool(stmt.property.vectorize)
        self.per_iter_ops = per_iter_ops
        self.total_ops = per_iter_ops * trip * execs

    def as_dict(self) -> Dict[str, object]:
        return {
            "sid": self.sid,
            "iter_var": self.iter_var,
            "trip": self.trip,
            "exact": self.exact,
            "seq_trip": round(self.seq_trip, 2),
            "execs": self.execs,
            "parallel": self.parallel,
            "vectorize": self.vectorize,
            "per_iter_ops": self.per_iter_ops,
            "total_ops": self.total_ops,
        }


class TensorTraffic:
    """Memory-traffic report row for one tensor."""

    __slots__ = ("name", "elem_bytes", "reads", "writes", "distinct",
                 "numel", "stride_class")

    def __init__(self, name: str, elem_bytes: int,
                 numel: Optional[int] = None):
        self.name = name
        self.elem_bytes = elem_bytes
        self.reads = 0
        self.writes = 0
        #: reuse-discounted estimate of distinct elements touched
        self.distinct = 0.0
        self.numel = numel
        #: worst innermost-stride class over this tensor's access sites
        self.stride_class = "invariant"

    @property
    def bytes(self) -> int:
        return (self.reads + self.writes) * self.elem_bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes": self.bytes,
            "distinct": round(self.distinct, 1),
            "numel": self.numel,
            "stride_class": self.stride_class,
        }


#: severity order of innermost-stride classes, friendliest first
STRIDE_ORDER = ("invariant", "unit", "bulk", "strided", "outer", "indirect")


class CostEstimate:
    """The comparable whole-program estimate.

    ``exact`` — every count is provably equal to what an execution under
    the given scalar environment performs. ``sound`` — every count is a
    proven upper bound (False once any loop fell back to the assumed
    trip count, e.g. CSR neighbour loops whose extents live in data).
    """

    __slots__ = ("name", "backend", "target_name", "counts", "loops",
                 "traffic", "stride_penalty", "footprint_bytes", "exact",
                 "sound", "assumed_trip", "stride_sites",
                 "_stride_weight")

    #: axes of the dominance partial order, as (label, getter) pairs
    DOMINANCE_AXES = COUNT_FIELDS + ("seq", "stride_penalty",
                                     "footprint_bytes")

    def __init__(self, name: str, backend: str, target_name: str,
                 counts: Counts, loops: List[LoopCost],
                 traffic: Dict[str, TensorTraffic],
                 stride_penalty: float, footprint_bytes: int,
                 exact: bool, sound: bool, assumed_trip: int,
                 stride_sites=(), stride_weight: float = 0.25):
        self.name = name
        self.backend = backend
        self.target_name = target_name
        self.counts = counts
        self.loops = loops
        self.traffic = traffic
        #: accesses (weighted by execution count) with a cache-hostile
        #: innermost stride on this backend
        self.stride_penalty = stride_penalty
        self.footprint_bytes = footprint_bytes
        self.exact = exact
        self.sound = sound
        self.assumed_trip = assumed_trip
        #: (access, class, elem_stride, execs) rows backing FT502
        self.stride_sites = tuple(stride_sites)
        self._stride_weight = stride_weight

    # -- comparison --------------------------------------------------------
    def axes(self) -> Tuple[float, ...]:
        c = self.counts
        return tuple(getattr(c, f) for f in COUNT_FIELDS) + (
            c.seq, self.stride_penalty, self.footprint_bytes)

    def dominates_or_equal(self, other: "CostEstimate") -> bool:
        """No worse than ``other`` on every axis."""
        return all(a <= b for a, b in zip(self.axes(), other.axes()))

    def dominates(self, other: "CostEstimate") -> bool:
        """Strictly better on at least one axis, no worse on the rest."""
        mine, theirs = self.axes(), other.axes()
        return all(a <= b for a, b in zip(mine, theirs)) \
            and any(a < b for a, b in zip(mine, theirs))

    @property
    def time_proxy(self) -> float:
        """Scalar ranking proxy: sequential work plus a locality penalty
        on backends where strides reach real memory."""
        return self.counts.seq + self._stride_weight * self.stride_penalty

    @property
    def parallelism(self) -> float:
        """Exploited parallelism: total ops per sequential step."""
        return self.counts.total_ops() / max(1.0, self.counts.seq)

    # -- reporting ---------------------------------------------------------
    def as_dict(self, top_loops: int = 5) -> Dict[str, object]:
        loops = sorted(self.loops, key=lambda l: -l.total_ops)
        return {
            "name": self.name,
            "backend": self.backend,
            "target": self.target_name,
            "counts": self.counts.as_dict(),
            "time_proxy": round(self.time_proxy, 2),
            "parallelism": round(self.parallelism, 2),
            "stride_penalty": round(self.stride_penalty, 1),
            "footprint_bytes": self.footprint_bytes,
            "exact": self.exact,
            "sound": self.sound,
            "loops": [l.as_dict() for l in loops[:top_loops]],
            "traffic": {t.name: t.as_dict()
                        for t in self.traffic.values()},
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        c = self.counts
        flag = "exact" if self.exact else \
            ("sound" if self.sound else "approx")
        return (f"<CostEstimate {self.name}/{self.backend} {flag} "
                f"flops={c.flops} loads={c.loads} stores={c.stores} "
                f"seq={c.seq:.0f} proxy={self.time_proxy:.0f}>")

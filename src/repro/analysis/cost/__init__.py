"""``repro.analysis.cost`` — the static cost-model analysis.

A measurement-free estimate of what a lowered function will do at run
time: symbolic trip counts, arithmetic by dtype class, per-tensor memory
traffic with innermost-stride classification, and exploited parallelism
per backend — folded into a comparable :class:`CostEstimate` (dominance
partial order + scalar time proxy). Consumed three ways: the
``cost_model`` pipeline pass / ``ft.analyze_cost()`` /
``python -m repro.verify --cost``; the auto-tuner's dominance pruner
(``autosched.autotune``); and the FT5xx performance lint
(:mod:`.lint`). See docs/PERFORMANCE.md ("Cost model & tuner pruning").

Only the light data model loads eagerly; the walker, lint and API load
on first use so ``import repro.analysis`` stays cheap.
"""

from .model import (COUNT_FIELDS, CostEstimate, Counts, LoopCost,
                    TensorTraffic, op_category)

_LAZY = ("analyze_cost", "estimate_cost", "perf_lint", "cost_model_pass",
         "clear_cost_memo", "infer_scalar_env")

_LAZY_FRONTIER = ("frontier_order", "pareto_front")


def __getattr__(name):
    if name in _LAZY:
        from . import api

        return getattr(api, name)
    if name in _LAZY_FRONTIER:
        from . import frontier

        return getattr(frontier, name)
    if name == "check_perf":
        from .lint import check_perf

        return check_perf
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COUNT_FIELDS", "CostEstimate", "Counts", "LoopCost", "TensorTraffic",
    "op_category", "check_perf",
] + list(_LAZY) + list(_LAZY_FRONTIER)

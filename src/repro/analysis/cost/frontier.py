"""Frontier ordering over cost estimates.

PR 7 used :class:`~repro.analysis.cost.model.CostEstimate` only as a
*pruner* (dominance against the incumbent). The structured searcher
(``repro.autosched.search``) also needs it as an *ordering*: each
generation screens a batch of candidates and measures only the most
promising few. This module provides that ordering as plain functions so
other consumers (benchmarks, future serving-time admission) can share
it.

Both functions take a list of ``CostEstimate | None`` and return
**indices** into it. ``None`` estimates (screening disabled, or the
estimate failed) sort after every real estimate but are never dropped —
ordering is advisory, candidates must not silently disappear here. Ties
and ``None`` groups keep submission order, which is what makes the
searcher's winner independent of measurement-worker count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .model import CostEstimate


def frontier_order(estimates: Sequence[Optional[CostEstimate]]
                   ) -> List[int]:
    """Indices of ``estimates`` from most to least promising.

    Primary key is ``time_proxy`` ascending; ``None`` estimates go last;
    equal keys keep their input order (stable sort).
    """
    def key(i: int):
        e = estimates[i]
        return (0, e.time_proxy) if e is not None else (1, 0.0)

    return sorted(range(len(estimates)), key=key)


def pareto_front(estimates: Sequence[Optional[CostEstimate]]
                 ) -> List[int]:
    """Indices of the non-dominated estimates (the Pareto front under
    :meth:`CostEstimate.dominates_or_equal`), in input order.

    A ``None`` estimate is incomparable, so it is always on the front.
    Duplicate estimates (mutual domination) all stay: the front answers
    "which candidates could still win on some axis", not "pick one".
    """
    front: List[int] = []
    for i, e in enumerate(estimates):
        if e is None:
            front.append(i)
            continue
        dominated = False
        for j, other in enumerate(estimates):
            if j == i or other is None:
                continue
            if other.dominates_or_equal(e) \
                    and not e.dominates_or_equal(other):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front

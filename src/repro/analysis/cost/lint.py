"""Performance lint (codes FT501/FT502/FT503) — findings that cost
nothing in correctness but leave measurable performance on the table:

- **FT501** provably-parallelizable sequential hot loop: an outermost
  sequential loop with no loop-carried dependence (the exact legality
  query ``schedule.parallelize`` uses) whose nest does enough work to be
  worth distributing;
- **FT502** cache-hostile innermost stride: an access site whose
  innermost loop strides a non-contiguous dimension (or a constant
  stride past the prefetch-friendly range) often enough to matter —
  usually fixed by ``reorder``;
- **FT503** loop-invariant recomputation: a stored expression that
  depends on none of its innermost enclosing loops' iterators and reads
  nothing written inside them — hoistable out of the loop.

All FT5xx findings are **info** severity: they describe optimization
opportunities, not mistakes, and the default ``verify()`` report
(level="warning") does not run them. Ask for them with
``verify(f, level="info")``, ``perf_lint(f)`` or the CLI's ``--cost``.
"""

from __future__ import annotations

from typing import List, Set

from ...ir import all_vars
from ...ir import stmt as S
from ..deps import DepAnalyzer, DirItem
from ..verify.diagnostics import Diagnostic, ir_path

#: minimum ops a loop nest must execute for FT501 ("hot")
HOT_LOOP_OPS = 256
#: minimum execution count of a hostile-stride site for FT502
HOT_STRIDE_EXECS = 256
#: minimum countable ops in an invariant stored expression for FT503
INVARIANT_MIN_OPS = 2
#: minimum trip count of the loop the recomputation rides in for FT503
INVARIANT_MIN_TRIP = 8


def check_perf(func: S.Func, backend: str = "pycode",
               target=None) -> List[Diagnostic]:
    """All performance-lint findings for one function."""
    from .api import estimate_cost

    est = estimate_cost(func, backend=backend, target=target)
    diags: List[Diagnostic] = []
    diags.extend(_check_parallelizable(func, est))
    diags.extend(_check_strides(func, est))
    diags.extend(_check_invariant_recompute(func, est))
    return diags


# -- FT501 ------------------------------------------------------------------


def _check_parallelizable(func: S.Func, est) -> List[Diagnostic]:
    rows = {l.sid: l for l in est.loops}
    analyzer = DepAnalyzer(func)
    diags: List[Diagnostic] = []

    def walk(s: S.Stmt):
        if isinstance(s, S.For):
            if s.property.parallel or s.property.vectorize:
                return  # this nest already exploits hardware parallelism
            row = rows.get(s.sid)
            if row is not None and row.total_ops >= HOT_LOOP_OPS \
                    and row.trip > 1:
                carried = analyzer.find(
                    direction=[DirItem.same_loop(s.sid, "!=")],
                    first_only=True)
                if not carried:
                    diags.append(Diagnostic(
                        "FT501", "info",
                        f"hot sequential loop over '{s.iter_var}' "
                        f"(~{row.total_ops} ops, trip {row.trip}) carries "
                        f"no dependence and could be parallelized",
                        stmt=s, path=ir_path(func, s.sid)))
                    return  # parallelizing this loop covers the nest
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    return diags


# -- FT502 ------------------------------------------------------------------


def _check_strides(func: S.Func, est) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    seen: Set[str] = set()
    for a, cls, stride, execs in est.stride_sites:
        if execs < HOT_STRIDE_EXECS:
            continue
        key = f"{a.stmt.sid}:{a.tensor}"
        if key in seen:
            continue
        seen.add(key)
        inner = a.loops[-1].iter_var if a.loops else "?"
        how = f"stride {stride} elements" if stride is not None \
            else "a whole outer dimension per step"
        diags.append(Diagnostic(
            "FT502", "info",
            f"access to {a.tensor!r} jumps {how} along innermost loop "
            f"'{inner}' (~{execs} times); reordering the loop nest "
            f"would restore contiguous traversal",
            stmt=a.stmt, tensor=a.tensor,
            path=ir_path(func, a.stmt.sid)))
    return diags


# -- FT503 ------------------------------------------------------------------


def _check_invariant_recompute(func: S.Func, est) -> List[Diagnostic]:
    trips = {l.sid: l.trip for l in est.loops}
    diags: List[Diagnostic] = []

    def written_under(loop: S.For) -> Set[str]:
        out: Set[str] = set()

        def walk(s: S.Stmt):
            if isinstance(s, (S.Store, S.ReduceTo)):
                out.add(s.var)
            for c in s.children_stmts():
                walk(c)

        walk(loop.body)
        return out

    def expr_ops(e) -> int:
        from .model import Counts
        from .count import count_expr

        c = Counts()
        count_expr(e, c)
        return c.total_ops()

    def loads_of(e) -> Set[str]:
        from ...ir import expr as E

        out: Set[str] = set()

        def walk(x):
            if isinstance(x, E.Load):
                out.add(x.var)
            for ch in x.children():
                walk(ch)

        walk(e)
        return out

    def walk(s: S.Stmt, loops):
        if isinstance(s, S.For):
            for c in s.children_stmts():
                walk(c, loops + (s,))
            return
        if isinstance(s, (S.Store, S.ReduceTo)) and loops:
            inner = loops[-1]
            vs = set(all_vars(s.expr))
            for i in s.indices:
                vs |= set(all_vars(i))
            if inner.iter_var not in vs \
                    and trips.get(inner.sid, 0) >= INVARIANT_MIN_TRIP \
                    and expr_ops(s.expr) >= INVARIANT_MIN_OPS \
                    and not (loads_of(s.expr) & written_under(inner)):
                diags.append(Diagnostic(
                    "FT503", "info",
                    f"value stored to {s.var!r} is recomputed identically "
                    f"on every iteration of loop '{inner.iter_var}' "
                    f"(trip {trips.get(inner.sid)}); hoist it out",
                    stmt=s, tensor=s.var,
                    path=ir_path(func, s.sid)))
            return
        for c in s.children_stmts():
            walk(c, loops)

    walk(func.body, ())
    return diags

"""Public entry points of the cost analysis.

``analyze_cost``/``estimate_cost`` wrap the static walker with an
in-process memo and per-pass accounting: every invocation is recorded
under the pass name ``cost_model`` in ``pipeline_stats()``, exactly like
the lowering passes, and hit/miss/time counters live in
``runtime.metrics.cost_stats()``. The memo key is sid-inclusive — two
structurally identical funcs with different sids get separate entries so
the loop/stride rows always point at real statements of the analyzed
tree.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ...ir import AccessType, defined_tensors
from ...ir import expr as E
from ...ir import stmt as S
from ...ir.hashing import struct_hash
from .count import analyze
from .model import CostEstimate

_MEMO: Dict[tuple, CostEstimate] = {}
_MEMO_LIMIT = 512


def _resolve_target(backend: str, target):
    if target is not None:
        return target
    from ...autosched.target import default_target

    return default_target(backend)


def _as_func(func_or_program) -> S.Func:
    if isinstance(func_or_program, S.Func):
        return func_or_program
    func = getattr(func_or_program, "func", None)
    if isinstance(func, S.Func):
        return func
    raise TypeError(
        f"analyze_cost() needs a Func or Program, got "
        f"{type(func_or_program).__name__}")


def estimate_cost(func: S.Func, backend: str = "pycode", target=None,
                  scalar_env: Optional[Dict[str, int]] = None,
                  assumed_trip: int = 8) -> CostEstimate:
    """Memoized static cost estimate of one lowered/staged ``Func``."""
    from ...runtime import metrics

    target = _resolve_target(backend, target)
    env = {k: int(v) for k, v in (scalar_env or {}).items()}
    key = (struct_hash(func, include_sids=True), backend,
           target.cache_key(), tuple(sorted(env.items())), assumed_trip)
    t0 = time.perf_counter()
    est = _MEMO.get(key)
    hit = est is not None
    if not hit:
        est = analyze(func, backend, target, env, assumed_trip)
        if len(_MEMO) >= _MEMO_LIMIT:
            _MEMO.clear()
        _MEMO[key] = est
    dt = time.perf_counter() - t0
    metrics.record_pass_run("cost_model", dt, hit)
    metrics.record_cost_analysis(dt, hit)
    return est


def analyze_cost(func_or_program, backend: str = "pycode", target=None,
                 scalar_env: Optional[Dict[str, int]] = None,
                 assumed_trip: int = 8) -> CostEstimate:
    """Cost-analyze a staged program or IR function (``ft.analyze_cost``).

    ``scalar_env`` maps shape variables / scalar parameters to concrete
    ints (see :func:`infer_scalar_env`); without it, symbolic loops fall
    back to ``assumed_trip`` iterations and the estimate is approximate
    rather than sound.
    """
    return estimate_cost(_as_func(func_or_program), backend=backend,
                         target=target, scalar_env=scalar_env,
                         assumed_trip=assumed_trip)


def perf_lint(func_or_program, backend: str = "pycode", target=None):
    """The FT5xx performance-lint findings (unfiltered; all info)."""
    from .lint import check_perf

    return check_perf(_as_func(func_or_program), backend=backend,
                      target=target)


def cost_model_pass(func: S.Func) -> S.Func:
    """The ``cost_model`` pipeline pass: analyze, record, pass through.

    Registered in ``repro.pipeline`` as an uncacheable identity pass so
    any pipeline can interpose the analysis and its timing shows up in
    ``pipeline_stats()`` next to the lowering passes.
    """
    estimate_cost(func)
    return func


def clear_cost_memo():
    _MEMO.clear()


def infer_scalar_env(func: S.Func, arrays=(),
                     scalars: Optional[dict] = None) -> Dict[str, int]:
    """Concrete values for ``func``'s shape variables, unified from the
    actual input arrays (positionally, like the driver binds them — or
    from a name-keyed mapping) plus explicit integer ``scalars``.
    Non-integer scalars are ignored."""
    env: Dict[str, int] = {}
    for k, v in (scalars or {}).items():
        if isinstance(v, (int, np.integer)) \
                and not isinstance(v, bool):
            env[k] = int(v)
    defs = defined_tensors(func.body)
    data_params = [p for p in func.params
                   if defs[p].atype in (AccessType.INPUT,
                                        AccessType.INOUT)]
    if isinstance(arrays, dict):
        arrays = [arrays.get(p) for p in data_params]
    for name, arr in zip(data_params, arrays):
        shape = getattr(arr, "shape", None)
        if shape is None:
            continue
        for dim_expr, actual in zip(defs[name].shape, shape):
            if isinstance(dim_expr, E.Var):
                env.setdefault(dim_expr.name, int(actual))
    return env

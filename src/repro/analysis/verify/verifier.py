"""The whole-program verifier driver: run every analysis, filter, sort.

``verify(func)`` works on any IR ``Func`` — freshly staged, mid-schedule,
or post-lowering — and on a frontend ``Program``. It returns a
:class:`~repro.analysis.verify.diagnostics.Diagnostics` report; it never
raises on findings (call ``report.raise_if_errors()`` for that, or build
with ``verify=True`` / ``REPRO_VERIFY=1`` to gate compilation).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...ir import stmt as S
from .bounds_check import check_bounds
from .defuse import check_defuse
from .diagnostics import SEVERITY_ORDER, Diagnostic, Diagnostics
from .lint import check_lint
from .races import check_races

#: analysis registry, in report order
ANALYSES = (
    ("bounds", check_bounds),
    ("races", check_races),
    ("defuse", check_defuse),
    ("lint", check_lint),
)


def _as_func(func_or_program) -> S.Func:
    if isinstance(func_or_program, S.Func):
        return func_or_program
    # Lazy: the frontend imports analysis pieces at staging time.
    from ...frontend.staging import Program

    if isinstance(func_or_program, Program):
        return func_or_program.func
    raise TypeError(
        f"verify() needs a Func or Program, got "
        f"{type(func_or_program).__name__}")


def _sort_key(d: Diagnostic):
    span = d.span if d.span is not None else ("￿", 1 << 30)
    return (SEVERITY_ORDER[d.severity], span[0], span[1], d.code,
            d.sid or "")


def verify(func_or_program,
           level: str = "warning",
           analyses: Optional[Iterable[str]] = None) -> Diagnostics:
    """Statically verify one function; return the findings.

    ``level`` is the least severe finding to keep (``"error"`` silences
    warnings). ``analyses`` restricts to a subset of
    ``("bounds", "races", "defuse", "lint")``; default is all of them.
    """
    func = _as_func(func_or_program)
    if level not in SEVERITY_ORDER:
        raise ValueError(
            f"unknown level {level!r}; choose from "
            f"{tuple(SEVERITY_ORDER)}")
    if analyses is not None:
        analyses = tuple(analyses)
        known = {name for name, _ in ANALYSES}
        bad = set(analyses) - known
        if bad:
            raise ValueError(
                f"unknown analyses {sorted(bad)}; choose from "
                f"{sorted(known)}")
    diags: List[Diagnostic] = []
    for name, check in ANALYSES:
        if analyses is not None and name not in analyses:
            continue
        diags.extend(check(func))
    max_rank = SEVERITY_ORDER[level]
    diags = [d for d in diags if SEVERITY_ORDER[d.severity] <= max_rank]
    diags.sort(key=_sort_key)
    report = Diagnostics(diags, func_name=func.name)
    from ...runtime import metrics

    metrics.record_verifier_run(len(report.errors), len(report.warnings))
    return report

"""The whole-program verifier driver: run every analysis, filter, sort.

``verify(func)`` works on any IR ``Func`` — freshly staged, mid-schedule,
or post-lowering — and on a frontend ``Program``. It returns a
:class:`~repro.analysis.verify.diagnostics.Diagnostics` report; it never
raises on findings (call ``report.raise_if_errors()`` for that, or build
with ``verify=True`` / ``REPRO_VERIFY=1`` to gate compilation).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ...ir import stmt as S
from .bounds_check import check_bounds
from .defuse import check_defuse
from .diagnostics import SEVERITY_ORDER, Diagnostic, Diagnostics
from .lint import check_lint
from .races import check_races


def _check_perf(func):
    # lazy: the perf lint rides on the cost model, which must not load
    # (and must not import the scheduler) just because verify() ran
    from ..cost.lint import check_perf

    return check_perf(func)


#: analysis registry, in report order
ANALYSES = (
    ("bounds", check_bounds),
    ("races", check_races),
    ("defuse", check_defuse),
    ("lint", check_lint),
    ("perf", _check_perf),
)


def _as_func(func_or_program) -> S.Func:
    if isinstance(func_or_program, S.Func):
        return func_or_program
    # Lazy: the frontend imports analysis pieces at staging time.
    from ...frontend.staging import Program

    if isinstance(func_or_program, Program):
        return func_or_program.func
    raise TypeError(
        f"verify() needs a Func or Program, got "
        f"{type(func_or_program).__name__}")


def _sort_key(d: Diagnostic):
    span = d.span if d.span is not None else ("￿", 1 << 30)
    return (SEVERITY_ORDER[d.severity], span[0], span[1], d.code,
            d.sid or "")


def verify(func_or_program,
           level: str = "warning",
           analyses: Optional[Iterable[str]] = None) -> Diagnostics:
    """Statically verify one function; return the findings.

    ``level`` is the least severe finding to keep (``"error"`` silences
    warnings). ``analyses`` restricts to a subset of
    ``("bounds", "races", "defuse", "lint", "perf")``; by default all of
    them run except that ``perf`` (whose findings are all info severity)
    is skipped unless ``level="info"`` asks for info findings.
    """
    func = _as_func(func_or_program)
    if level not in SEVERITY_ORDER:
        raise ValueError(
            f"unknown level {level!r}; choose from "
            f"{tuple(SEVERITY_ORDER)}")
    if analyses is not None:
        analyses = tuple(analyses)
        known = {name for name, _ in ANALYSES}
        bad = set(analyses) - known
        if bad:
            raise ValueError(
                f"unknown analyses {sorted(bad)}; choose from "
                f"{sorted(known)}")
    max_rank = SEVERITY_ORDER[level]
    diags: List[Diagnostic] = []
    for name, check in ANALYSES:
        if analyses is not None and name not in analyses:
            continue
        if analyses is None and name == "perf" \
                and max_rank < SEVERITY_ORDER["info"]:
            # every perf finding is info severity: skip the (cost-model
            # + dependence) work when the report would drop them anyway
            continue
        diags.extend(check(func))
    diags = [d for d in diags if SEVERITY_ORDER[d.severity] <= max_rank]
    diags.sort(key=_sort_key)
    report = Diagnostics(diags, func_name=func.name)
    from ...runtime import metrics

    metrics.record_verifier_run(len(report.errors), len(report.warnings))
    return report

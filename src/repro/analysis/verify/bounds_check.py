"""Out-of-bounds sanitizer (codes FT101/FT102/FT103).

Every indexed access is checked against its tensor's declared extents
with the same Presburger machinery the scheduler uses for dependence
analysis. The check is two-tiered:

1. **Exact tier.** When the access's iteration domain (loop bounds,
   ``if``/``assert`` guards) and the index/extent expressions are all
   affine, the violation system ``domain ∧ (index < 0 ∨ index ≥ extent)``
   is decided exactly by the Omega test: feasible means a *proven*
   out-of-bounds access (FT101, error); infeasible means proven safe.

2. **Atomized tier.** Non-affine sub-expressions (data-dependent indices
   like ``indptr[i]``, products of iterators, ``min``/``max``) are
   replaced by fresh unconstrained *atom* variables — one atom per
   distinct expression, shared across the whole system, which preserves
   relations like ``indptr[i] ≤ jj < indptr[i+1]`` between a loop bound
   and an index. Symbolic bound candidates from ``analysis.bounds``
   further constrain atomized indices (this is what proves ``min``/
   ``max``-clamped accesses safe). The atomized system over-approximates
   the reachable states, so *infeasible still proves safety*; a feasible
   violation only means "cannot prove in bounds" and is reported as a
   warning (FT102) rather than an error.

Tensors are assumed non-empty (every extent >= 1): without this, any
constant-index access (``y[0]`` with symbolic extent ``n``) would be
flagged for the degenerate zero-extent case. A fixed index that demands
a *larger* extent (``y[5]``) is still reported — add an ``assert``
relating the extents if that precondition is intended.
"""

from __future__ import annotations

from typing import Dict, List

from ...ir import defined_tensors
from ...ir import stmt as S
from ...ir.printer import print_expr
from ...polyhedral import Affine, AffineBuilder, LinCon, NonAffine, is_feasible
from ..access import Access, collect_accesses
from ..bounds import BoundsCtx, bound_candidates
from .diagnostics import Diagnostic, ir_path

#: cap on symbolic bound candidates fed into the solver per side — the
#: candidate sets grow multiplicatively through +/- and min/max
_MAX_CANDIDATES = 24


class _AtomizingBuilder(AffineBuilder):
    """An :class:`AffineBuilder` that never fails: non-affine
    sub-expressions become fresh unconstrained variables ("atoms").

    Atoms are shared through ``atoms`` (keyed by expression content), so
    the same non-affine value appearing in a loop bound and in an index
    maps to the same variable — sound because every constraint in one
    system concerns a single statement instance, where each expression
    has a single value.
    """

    def __init__(self, atoms: Dict[str, str], state: dict, rename=None):
        super().__init__(rename)
        self.atoms = atoms
        self._state = state  # {"exact": bool} shared across builders

    def build(self, e) -> Affine:
        try:
            return AffineBuilder.build(self, e)
        except NonAffine:
            self._state["exact"] = False
            name = self.atoms.setdefault(e.key(), f"$atom{len(self.atoms)}")
            return Affine.var(name)


def _domain_cons(acc: Access, atoms: Dict[str, str], state: dict
                 ) -> List[LinCon]:
    """Constraints describing one instance of the access's iteration
    domain. Atomizes non-affine pieces; drops (and marks inexact)
    disjunctive or unmodellable guards."""
    out: List[LinCon] = []
    b = _AtomizingBuilder(atoms, state)
    for loop in acc.loops:
        iv = Affine.var(loop.iter_var)
        out.append(LinCon.ge(iv, b.build(loop.begin)))
        out.append(LinCon.lt(iv, b.build(loop.end)))
    for cond, polarity in acc.conds:
        cb = _AtomizingBuilder(atoms, state)
        try:
            alts = cb.build_condition(cond, not polarity)
        except NonAffine:
            state["exact"] = False  # guard dropped: domain over-approximated
            continue
        if len(alts) == 1:
            out.extend(cb.extra_cons)
            out.extend(alts[0])
        else:
            state["exact"] = False  # disjunctive guard dropped
    out.extend(b.extra_cons)
    return out


def _candidate_cons(idx, idx_a: Affine, ctx: BoundsCtx,
                    atoms: Dict[str, str]) -> List[LinCon]:
    """Sound extra constraints on an index from its symbolic bound
    candidates. These only ever *prove more* accesses safe, so they never
    affect the exactness verdict (they use a throwaway state)."""
    out: List[LinCon] = []
    scratch = {"exact": True}
    b = _AtomizingBuilder(atoms, scratch)
    lowers, uppers = bound_candidates(idx, ctx)
    for lo in lowers[:_MAX_CANDIDATES]:
        out.append(LinCon.ge(idx_a, b.build(lo)))
    for up in uppers[:_MAX_CANDIDATES]:
        out.append(LinCon.le(idx_a, b.build(up)))
    out.extend(b.extra_cons)
    return out


def check_bounds(func: S.Func) -> List[Diagnostic]:
    """All bounds findings for one function."""
    diags: List[Diagnostic] = []
    defs = defined_tensors(func.body)
    for acc in collect_accesses(func):
        vd = defs.get(acc.tensor)
        if vd is None or acc.indices is None:
            continue  # whole-tensor (LibCall) operands have no index to check
        kind = "write to" if acc.is_write else "read of"
        if len(acc.indices) != vd.ndim:
            diags.append(
                Diagnostic(
                    "FT103", "error",
                    f"{kind} {acc.tensor!r} with {len(acc.indices)} "
                    f"indices, but the tensor is {vd.ndim}-dimensional",
                    stmt=acc.stmt, tensor=acc.tensor,
                    path=ir_path(func, acc.stmt.sid)))
            continue
        if not acc.indices:
            continue  # scalar access: nothing to bound

        atoms: Dict[str, str] = {}
        state = {"exact": True}
        base = _domain_cons(acc, atoms, state)
        ctx = BoundsCtx(
            {l.iter_var: (l.begin, l.end) for l in acc.loops})
        builder = _AtomizingBuilder(atoms, state)
        for dim, (idx, extent) in enumerate(zip(acc.indices, vd.shape)):
            idx_a = builder.build(idx)
            ext_a = builder.build(extent)
            cons = base + builder.extra_cons
            cons += _candidate_cons(idx, idx_a, ctx, atoms)
            # Assume the accessed tensor is non-empty: without it, every
            # constant-index access (y[0] on a tensor of symbolic extent
            # n) would be flagged for the degenerate n = 0 case.
            cons.append(LinCon.ge(ext_a, Affine.constant(1)))
            low_bad = is_feasible(cons + [LinCon.lt(idx_a,
                                                    Affine.constant(0))])
            high_bad = is_feasible(cons + [LinCon.ge(idx_a, ext_a)])
            if not (low_bad or high_bad):
                continue
            side = "is negative" if low_bad else \
                f"reaches or exceeds extent {print_expr(extent)}"
            if state["exact"]:
                diags.append(
                    Diagnostic(
                        "FT101", "error",
                        f"{kind} {acc.tensor!r} out of bounds: index "
                        f"{print_expr(idx)} of dimension {dim} {side} "
                        f"for some loop iteration",
                        stmt=acc.stmt, tensor=acc.tensor,
                        path=ir_path(func, acc.stmt.sid)))
            else:
                diags.append(
                    Diagnostic(
                        "FT102", "warning",
                        f"cannot prove {kind} {acc.tensor!r} in bounds: "
                        f"index {print_expr(idx)} of dimension {dim} "
                        f"is data-dependent or non-affine "
                        f"(extent {print_expr(extent)})",
                        stmt=acc.stmt, tensor=acc.tensor,
                        path=ir_path(func, acc.stmt.sid)))
    return diags

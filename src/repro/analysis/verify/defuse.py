"""Def-use checker (codes FT301/FT302).

Locally-allocated (``cache``) tensors hold garbage until written. For
every read of such a tensor — a ``Load``, or the read half of a
``ReduceTo``'s read-modify-write — the checker asks the dependence engine
whether *any* initializing write (a ``Store`` or library-call output; a
``ReduceTo`` does not initialize) can precede the read on an aliasing
element:

- a read with no feasible preceding write, when the tensor *is* written
  elsewhere, is a proven use-before-initialization (FT301);
- a read of a tensor with no initializing write anywhere is FT302.

Feasibility uses the same exact-when-affine / conservative-when-not
Presburger test as scheduling, so data-dependent indices silence the
checker (may-alias) rather than producing false positives. Tensors whose
contents come from outside — ``input`` / ``inout`` parameters, ``output``
parameters (the driver zero-fills them), and captured constants
(``init_data``) — are exempt.
"""

from __future__ import annotations

from typing import List

from ...ir import AccessType, defined_tensors
from ...ir import stmt as S
from ..deps import DepAnalyzer
from .diagnostics import Diagnostic, ir_path


def _uninitialized(vd: S.VarDef) -> bool:
    return vd.atype is AccessType.CACHE and vd.init_data is None


def check_defuse(func: S.Func) -> List[Diagnostic]:
    """All def-use findings for one function."""
    defs = defined_tensors(func.body)
    targets = {name for name, vd in defs.items() if _uninitialized(vd)}
    if not targets:
        return []
    analyzer = DepAnalyzer(func)
    by_tensor = {}
    for acc in analyzer.accesses:
        if acc.tensor in targets:
            by_tensor.setdefault(acc.tensor, []).append(acc)

    diags: List[Diagnostic] = []
    for tensor, accs in by_tensor.items():
        # Initializing writes: Store / LibCall outputs. ReduceTo reads its
        # target first, so it *consumes* an initialization, never provides
        # one.
        inits = [a for a in accs if a.is_write and a.reduce_op is None]
        reads = [a for a in accs if not a.is_write or a.reduce_op]
        if not reads:
            continue
        if not inits:
            r = min(reads, key=lambda a: a.order)
            what = "reduced into" if r.reduce_op else "read"
            diags.append(
                Diagnostic(
                    "FT302", "error",
                    f"{tensor!r} is {what} but never initialized: no "
                    f"store to it anywhere in the program",
                    stmt=r.stmt, tensor=tensor,
                    path=ir_path(func, r.stmt.sid)))
            continue
        for r in reads:
            if any(analyzer.pair_feasible(w, r) for w in inits):
                continue  # some write can reach it; assume initialized
            what = "reduction into" if r.reduce_op else "read of"
            diags.append(
                Diagnostic(
                    "FT301", "error",
                    f"{what} {tensor!r} before initialization: no store "
                    f"to the same element can precede this access",
                    stmt=r.stmt, tensor=tensor,
                    path=ir_path(func, r.stmt.sid)))
    return diags

"""Structured diagnostics shared by the verifier and schedule errors.

A :class:`Diagnostic` carries a stable error code (``FT1xx`` bounds,
``FT2xx`` parallelism, ``FT3xx`` def-use, ``FT4xx`` lint — see
docs/DIAGNOSTICS.md), a severity, the offending statement's sid, its IR
path (a breadcrumb of enclosing statements) and, when the frontend
captured one, the Python source span the statement was staged from.

:class:`Diagnostics` is the report container returned by
``repro.verify(...)``; it renders findings with source-line carets and can
raise a :class:`~repro.errors.VerificationError` when errors are present.
"""

from __future__ import annotations

import linecache
import os
from typing import Iterable, List, Optional, Tuple

from ...ir import stmt as S

#: recognised severities, most severe first
SEVERITIES = ("error", "warning", "info")
SEVERITY_ORDER = {name: rank for rank, name in enumerate(SEVERITIES)}


class Diagnostic:
    """One verifier finding, addressable by code / statement / source."""

    __slots__ = ("code", "severity", "message", "sid", "span", "tensor",
                 "path", "related", "source")

    def __init__(self,
                 code: str,
                 severity: str,
                 message: str,
                 stmt: Optional[S.Stmt] = None,
                 sid: Optional[str] = None,
                 span: Optional[Tuple[str, int]] = None,
                 tensor: Optional[str] = None,
                 path: Tuple[str, ...] = (),
                 related: Tuple[tuple, ...] = (),
                 source=None):
        if severity not in SEVERITY_ORDER:
            raise ValueError(f"unknown severity {severity!r}")
        self.code = code
        self.severity = severity
        self.message = message
        if stmt is not None:
            sid = sid if sid is not None else stmt.sid
            span = span if span is not None else stmt.span
        self.sid = sid
        self.span = span
        #: tensor the finding is about, if any
        self.tensor = tensor
        #: breadcrumb of enclosing statements (outermost first)
        self.path = tuple(path)
        #: secondary locations: (sid, span, note) triples
        self.related = tuple(related)
        #: the analysis object backing the finding (e.g. a Dependence)
        self.source = source

    # -- rendering ----------------------------------------------------------
    def location(self) -> str:
        if self.span is not None:
            fname, line = self.span
            return f"{fname}:{line}"
        return self.sid or "<unknown>"

    def render(self, show_source: bool = True, base_dir: str = "") -> str:
        """One finding as text, with a source caret when a span is known::

            examples/x.py:12: error[FT101] store to 'y' out of bounds ...
                y[i] = x[i + 1]
                ^
        """
        loc = self.location()
        if base_dir and self.span is not None:
            try:
                loc = f"{os.path.relpath(self.span[0], base_dir)}" \
                      f":{self.span[1]}"
            except ValueError:  # pragma: no cover - cross-drive paths
                pass
        head = f"{loc}: {self.severity}[{self.code}] {self.message}"
        if self.path:
            head += f"\n    in: {' > '.join(self.path)}"
        out = [head]
        if show_source and self.span is not None:
            text = linecache.getline(*self.span)
            if text:
                stripped = text.strip()
                out.append(f"    {stripped}")
                out.append("    ^")
        for sid, span, note in self.related:
            where = f"{span[0]}:{span[1]}" if span else sid
            out.append(f"    note: {note} at {where}")
        return "\n".join(out)

    def __repr__(self):
        return f"<{self.severity}[{self.code}] {self.location()}: " \
               f"{self.message}>"


class Diagnostics:
    """An ordered collection of findings for one function."""

    def __init__(self, diags: Iterable[Diagnostic],
                 func_name: Optional[str] = None):
        self.diags: List[Diagnostic] = list(diags)
        self.func_name = func_name

    # -- queries ------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diags if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diags if d.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diags)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diags if d.code == code]

    @property
    def codes(self) -> set:
        return {d.code for d in self.diags}

    def __iter__(self):
        return iter(self.diags)

    def __len__(self):
        return len(self.diags)

    def __bool__(self):
        return bool(self.diags)

    # -- rendering ----------------------------------------------------------
    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        name = f"{self.func_name}: " if self.func_name else ""
        if not self.diags:
            return f"{name}no findings"
        return f"{name}{n_err} error(s), {n_warn} warning(s)"

    def render(self, show_source: bool = True, base_dir: str = "") -> str:
        if not self.diags:
            return self.summary()
        parts = [d.render(show_source, base_dir) for d in self.diags]
        return "\n".join(parts + [self.summary()])

    def raise_if_errors(self):
        """Raise :class:`~repro.errors.VerificationError` on any error."""
        if self.has_errors:
            from ...errors import VerificationError

            raise VerificationError(
                f"verification failed: {self.summary()}\n"
                + "\n".join(d.render() for d in self.errors),
                diagnostics=self)

    def __repr__(self):
        return f"<Diagnostics {self.summary()}>"


# ---------------------------------------------------------------------------
# IR paths and schedule-error interop
# ---------------------------------------------------------------------------


def _describe(s: S.Stmt) -> str:
    if isinstance(s, S.For):
        return f"for {s.iter_var}"
    if isinstance(s, S.If):
        return "if"
    if isinstance(s, S.VarDef):
        return f"def {s.name}"
    if isinstance(s, S.Assert):
        return "assert"
    if isinstance(s, (S.Store, S.ReduceTo)):
        return f"write {s.var}"
    if isinstance(s, S.LibCall):
        return f"lib.{s.kind}"
    return type(s).__name__.lower()


def ir_path(root, sid: str) -> Tuple[str, ...]:
    """Breadcrumb of enclosing statements down to ``sid`` (outermost
    first), e.g. ``('def y', 'for i', 'if', 'write y')``. Empty when the
    sid is not in the tree."""
    node = root.body if isinstance(root, S.Func) else root

    def walk(s, trail):
        here = trail
        if not isinstance(s, S.StmtSeq):
            here = trail + (_describe(s),)
        if s.sid == sid:
            return here
        for c in s.children_stmts():
            hit = walk(c, here)
            if hit is not None:
                return hit
        return None

    return walk(node, ()) or ()


def dependence_diagnostic(dep, code: str = "FT200",
                          severity: str = "error",
                          message: Optional[str] = None) -> Diagnostic:
    """A :class:`Diagnostic` for an ``analysis.deps.Dependence`` — the
    bridge that lets :class:`~repro.errors.DependenceViolation` carry the
    same structured findings the verifier emits."""
    if message is None:
        message = (f"{dep.kind} dependence on {dep.tensor!r}: "
                   f"{dep.earlier.stmt.sid} -> {dep.later.stmt.sid} "
                   f"blocks the transformation")
    earlier = dep.earlier.stmt
    return Diagnostic(code, severity, message, stmt=dep.later.stmt,
                      tensor=dep.tensor,
                      related=((earlier.sid, earlier.span,
                                "conflicting earlier access"),),
                      source=dep)

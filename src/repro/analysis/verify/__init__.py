"""Whole-program IR verifier: bounds sanitizer, race detector, def-use
checker and lint, reporting structured :class:`Diagnostic` findings.

See docs/DIAGNOSTICS.md for the catalogue of error codes.
"""

from .bounds_check import check_bounds
from .defuse import check_defuse
from .diagnostics import (SEVERITIES, SEVERITY_ORDER, Diagnostic,
                          Diagnostics, dependence_diagnostic, ir_path)
from .lint import check_lint
from .races import check_races
from .verifier import ANALYSES, verify

__all__ = [
    "ANALYSES", "Diagnostic", "Diagnostics", "SEVERITIES",
    "SEVERITY_ORDER", "check_bounds", "check_defuse", "check_lint",
    "check_races", "dependence_diagnostic", "ir_path", "verify",
]

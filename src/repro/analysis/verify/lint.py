"""Lint analyses (codes FT401/FT402/FT403) — findings that do not make a
program incorrect but almost always indicate a mistake or wasted work:

- **FT401** dead write: a write to a ``cache`` tensor that no read can
  ever observe (the value is computed and thrown away);
- **FT402** unused tensor: a ``cache`` ``VarDef`` that is never accessed
  at all;
- **FT403** empty loop: a loop with a provably-zero trip count or an
  empty body (only the outermost such loop is reported).

All lint findings are warnings. Writes to ``input``/``output``/``inout``
tensors are externally observable and never counted dead.
"""

from __future__ import annotations

from typing import List

from ...ir import AccessType, IntConst
from ...ir import stmt as S
from ..deps import DepAnalyzer
from .diagnostics import Diagnostic, ir_path


def _empty_body(s: S.Stmt) -> bool:
    return isinstance(s, S.StmtSeq) and not s.stmts


def _check_loops(func: S.Func) -> List[Diagnostic]:
    diags: List[Diagnostic] = []

    def walk(s: S.Stmt):
        if isinstance(s, S.For):
            if isinstance(s.begin, IntConst) and isinstance(s.end, IntConst) \
                    and s.end.val <= s.begin.val:
                diags.append(
                    Diagnostic(
                        "FT403", "warning",
                        f"loop over '{s.iter_var}' runs zero iterations "
                        f"(range [{s.begin.val}, {s.end.val}))",
                        stmt=s, path=ir_path(func, s.sid)))
                return  # report only the outermost dead loop
            if _empty_body(s.body):
                diags.append(
                    Diagnostic(
                        "FT403", "warning",
                        f"loop over '{s.iter_var}' has an empty body",
                        stmt=s, path=ir_path(func, s.sid)))
                return
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    return diags


def check_lint(func: S.Func) -> List[Diagnostic]:
    """All lint findings for one function."""
    diags = _check_loops(func)
    analyzer = DepAnalyzer(func)
    accessed = set(a.tensor for a in analyzer.accesses)

    # FT402: cache tensors never accessed at all.
    def find_defs(s: S.Stmt):
        if isinstance(s, S.VarDef):
            if s.atype is AccessType.CACHE and s.init_data is None \
                    and s.name not in accessed:
                diags.append(
                    Diagnostic(
                        "FT402", "warning",
                        f"tensor {s.name!r} is allocated but never used",
                        stmt=s, tensor=s.name,
                        path=ir_path(func, s.sid)))
        for c in s.children_stmts():
            find_defs(c)

    find_defs(func.body)

    # FT401: writes to cache tensors that no read can observe.
    cache_names = {
        name for name, vd in _cache_defs(func).items()
    }
    by_tensor = {}
    for a in analyzer.accesses:
        if a.tensor in cache_names:
            by_tensor.setdefault(a.tensor, []).append(a)
    for tensor, accs in by_tensor.items():
        writes = [a for a in accs if a.is_write]
        loads = [a for a in accs if not a.is_write]
        if not writes:
            continue
        if not loads:
            w = min(writes, key=lambda a: a.order)
            diags.append(
                Diagnostic(
                    "FT401", "warning",
                    f"{tensor!r} is written but never read; the writes "
                    f"are dead",
                    stmt=w.stmt, tensor=tensor,
                    path=ir_path(func, w.stmt.sid)))
            continue
        for w in writes:
            if any(analyzer.pair_feasible(w, r) for r in loads):
                continue
            kind = "reduction into" if w.reduce_op else "write to"
            diags.append(
                Diagnostic(
                    "FT401", "warning",
                    f"dead {kind} {tensor!r}: no later read can observe "
                    f"this value",
                    stmt=w.stmt, tensor=tensor,
                    path=ir_path(func, w.stmt.sid)))
    return diags


def _cache_defs(func: S.Func):
    from ...ir import defined_tensors

    return {
        name: vd
        for name, vd in defined_tensors(func.body).items()
        if vd.atype is AccessType.CACHE
    }

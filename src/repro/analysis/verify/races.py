"""Parallel race detector (codes FT201/FT202/FT203).

For every loop annotated ``parallel`` (by ``Schedule.parallelize``, the
auto-scheduler, or hand-written IR), the detector re-runs the dependence
query that legality checking performs at schedule time — a cross-iteration
(``!=`` direction) query with reduction pairs *included* — and classifies
every witnessed dependence:

- **FT203**: the dependence crosses threads whose memory scope cannot even
  observe each other's copy of the tensor (``gpu/local`` across any
  parallel threads, ``gpu/shared`` across ``blockIdx`` blocks);
- **FT202**: both endpoints are the same-operator reduction, which is
  semantically legal in parallel *iff* the update is atomic — reported
  when a ``ReduceTo`` involved is not marked atomic;
- **FT201**: any other cross-thread dependence — a true data race.

This is independent of whatever verdict was reached when the annotation
was introduced: the verifier replays the analysis on the IR as it stands
now, so races introduced by later rewrites (or hand edits) are caught.
"""

from __future__ import annotations

from typing import List

from ...ir import MemType, collect_stmts, defined_tensors
from ...ir import stmt as S
from ..deps import DepAnalyzer, Dependence, DirItem
from .diagnostics import Diagnostic, ir_path


def _scope_violation(kind: str, mtype: MemType) -> str:
    """Why this (parallel kind, memory type) pair cannot carry a
    dependence at all, or '' if the scope is fine — per the
    :class:`~repro.backend.ScopeRule` declarations of the registered
    backends (the GPU rules come from the ``gpusim``/``cuda``
    Backend objects)."""
    from ...backend import scope_violation

    return scope_violation(kind, mtype)


def _classify(dep: Dependence, loop: S.For, defs) -> Diagnostic:
    kind = loop.property.parallel
    vd = defs.get(dep.tensor)
    mtype = vd.mtype if vd is not None else None
    earlier, later = dep.earlier, dep.later

    scope = _scope_violation(kind, mtype) if mtype is not None else ""
    if scope:
        return Diagnostic(
            "FT203", "error",
            f"dependence on {dep.tensor!r} ({mtype}) crosses iterations "
            f"of parallel loop '{loop.iter_var}' ({kind}), but {scope}",
            stmt=later.stmt, tensor=dep.tensor)

    is_reduce_pair = (earlier.reduce_op is not None
                      and earlier.reduce_op == later.reduce_op)
    if is_reduce_pair:
        non_atomic = [
            s for s in dict.fromkeys((earlier.stmt, later.stmt))
            if isinstance(s, S.ReduceTo) and not s.atomic
        ]
        if not non_atomic:
            return None  # atomic parallel reduction: legal
        s = non_atomic[0]
        return Diagnostic(
            "FT202", "error",
            f"parallel reduction into {dep.tensor!r} is not atomic: "
            f"iterations of '{loop.iter_var}' ({kind}) update the same "
            f"element with '{s.op}=' concurrently; updates may be lost",
            stmt=s, tensor=dep.tensor)

    return Diagnostic(
        "FT201", "error",
        f"data race on {dep.tensor!r}: {dep.kind} dependence between "
        f"different iterations of parallel loop '{loop.iter_var}' "
        f"({kind})",
        stmt=later.stmt, tensor=dep.tensor,
        related=((earlier.stmt.sid, earlier.stmt.span,
                  "conflicting access"),),
        source=dep)


def check_races(func: S.Func) -> List[Diagnostic]:
    """All race findings for one function."""
    loops = collect_stmts(
        func.body, lambda s: isinstance(s, S.For) and s.property.parallel)
    if not loops:
        return []
    defs = defined_tensors(func.body)
    analyzer = DepAnalyzer(func)
    diags: List[Diagnostic] = []
    seen = set()
    for loop in loops:
        deps = analyzer.find(
            direction=[DirItem.same_loop(loop.sid, "!=")],
            ignore_reduce_pairs=False)
        for dep in deps:
            d = _classify(dep, loop, defs)
            if d is None:
                continue
            key = (d.code, loop.sid, d.tensor, d.sid)
            if key in seen:
                continue
            seen.add(key)
            d.path = ir_path(func, d.sid)
            diags.append(d)
    return diags

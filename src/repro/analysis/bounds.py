"""Symbolic bound analysis for index expressions (paper section 4.2.3).

For an expression over loop iterators, collect *all* lower- and upper-bound
candidate expressions, then answer "the tightest bound expressible with
only these variables" — the inference that sizes ``cache`` tensors and
shrinks over-allocated ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..ir import (Expr, IntConst, Load, Var, all_vars, makeAdd, makeMax,
                  makeMin, makeMul, makeSub, same_expr, wrap)
from ..ir import expr as E


class BoundsCtx:
    """Iterator ranges in scope: name -> (begin, end) with end exclusive."""

    def __init__(self, ranges: Optional[Dict[str, Tuple[Expr, Expr]]] = None):
        self.ranges = dict(ranges or {})

    def with_loop(self, name: str, begin: Expr, end: Expr) -> "BoundsCtx":
        out = BoundsCtx(self.ranges)
        out.ranges[name] = (wrap(begin), wrap(end))
        return out


def bound_candidates(e: Expr, ctx: BoundsCtx) -> Tuple[List[Expr],
                                                       List[Expr]]:
    """All candidate (lowers, uppers) of ``e``; both lists always include
    ``e`` itself. Bounds are inclusive."""
    lowers, uppers = _cands(e, ctx)
    return _dedup(lowers + [e]), _dedup(uppers + [e])


def _dedup(exprs: List[Expr]) -> List[Expr]:
    out, seen = [], set()
    for x in exprs:
        k = x.key()
        if k not in seen:
            seen.add(k)
            out.append(x)
    return out


def _cands(e: Expr, ctx: BoundsCtx) -> Tuple[List[Expr], List[Expr]]:
    if isinstance(e, IntConst):
        return [e], [e]
    if isinstance(e, Var):
        rng = ctx.ranges.get(e.name)
        if rng is None:
            return [e], [e]
        lo, hi = rng
        los, _ = _cands(lo, ctx)
        _, ups = _cands(makeSub(hi, wrap(1)), ctx)
        return los + [lo], ups + [makeSub(hi, wrap(1))]
    if isinstance(e, E.Add):
        ll, lu = _cands(e.lhs, ctx)
        rl, ru = _cands(e.rhs, ctx)
        return ([makeAdd(a, b) for a in ll for b in rl],
                [makeAdd(a, b) for a in lu for b in ru])
    if isinstance(e, E.Sub):
        ll, lu = _cands(e.lhs, ctx)
        rl, ru = _cands(e.rhs, ctx)
        return ([makeSub(a, b) for a in ll for b in ru],
                [makeSub(a, b) for a in lu for b in rl])
    if isinstance(e, E.Mul):
        k = None
        inner = None
        if isinstance(e.lhs, IntConst):
            k, inner = e.lhs.val, e.rhs
        elif isinstance(e.rhs, IntConst):
            k, inner = e.rhs.val, e.lhs
        if k is None:
            return [], []
        lo, up = _cands(inner, ctx)
        if k >= 0:
            return ([makeMul(a, wrap(k)) for a in lo],
                    [makeMul(a, wrap(k)) for a in up])
        return ([makeMul(a, wrap(k)) for a in up],
                [makeMul(a, wrap(k)) for a in lo])
    if isinstance(e, E.FloorDiv) and isinstance(e.rhs, IntConst) \
            and e.rhs.val > 0:
        lo, up = _cands(e.lhs, ctx)
        d = e.rhs
        from ..ir import makeFloorDiv

        return ([makeFloorDiv(a, d) for a in lo],
                [makeFloorDiv(a, d) for a in up])
    if isinstance(e, E.Mod) and isinstance(e.rhs, IntConst) \
            and e.rhs.val > 0:
        return [wrap(0)], [wrap(e.rhs.val - 1)]
    if isinstance(e, E.Min):
        ll, lu = _cands(e.lhs, ctx)
        rl, ru = _cands(e.rhs, ctx)
        return [makeMin(a, b) for a in ll for b in rl], lu + ru
    if isinstance(e, E.Max):
        ll, lu = _cands(e.lhs, ctx)
        rl, ru = _cands(e.rhs, ctx)
        return ll + rl, [makeMax(a, b) for a in lu for b in ru]
    if isinstance(e, E.IfExpr):
        tl, tu = _cands(e.then_case, ctx)
        el, eu = _cands(e.else_case, ctx)
        return ([makeMin(a, b) for a in tl for b in el],
                [makeMax(a, b) for a in tu for b in eu])
    # Loads and anything else: no further decomposition
    return [], []


def _allowed(e: Expr, allowed_vars: Iterable[str]) -> bool:
    allowed_vars = set(allowed_vars)
    return all(v in allowed_vars for v in all_vars(e)) and not _has_load(e)


def _has_load(e: Expr) -> bool:
    if isinstance(e, Load):
        return True
    return any(_has_load(c) for c in e.children())


def tightest_bounds(e: Expr, ctx: BoundsCtx,
                    allowed_vars: Iterable[str]
                    ) -> Tuple[Optional[Expr], Optional[Expr]]:
    """The tightest inclusive (lower, upper) bounds of ``e`` using only
    ``allowed_vars`` (and constants). Either side may be None when no
    candidate qualifies.

    Sound combination: the max of all admissible lower bounds and the min
    of all admissible upper bounds.
    """
    lowers, uppers = bound_candidates(e, ctx)
    allowed_vars = set(allowed_vars)
    lo_ok = [x for x in lowers if _allowed(x, allowed_vars)]
    up_ok = [x for x in uppers if _allowed(x, allowed_vars)]
    lo = None
    for x in lo_ok:
        lo = x if lo is None else makeMax(lo, x)
    up = None
    for x in up_ok:
        up = x if up is None else makeMin(up, x)
    return lo, up


def const_bounds(e: Expr, ctx: BoundsCtx
                 ) -> Tuple[Optional[int], Optional[int]]:
    """Constant inclusive bounds of ``e`` when derivable, else None."""
    lo, up = tightest_bounds(e, ctx, allowed_vars=())
    lo_v = lo.val if isinstance(lo, IntConst) else None
    up_v = up.val if isinstance(up, IntConst) else None
    return lo_v, up_v

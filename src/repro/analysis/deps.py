"""Instance-wise dependence analysis on the IR (paper section 4.2).

For every pair of accesses to the same tensor (at least one being a write),
the analyser builds a Presburger system over the two statement *instances*
(one point of each iteration space):

- iteration-domain constraints (loop bounds, affine ``if`` conditions);
- access equality (may-alias: non-affine indices are unconstrained);
- stack-scope projection — iterations of loops that enclose the tensor's
  VarDef must coincide, which removes the false dependences of Fig. 12(d);
- execution order (the "earlier" instance precedes the "later" one);
- the query's direction constraints.

A dependence *exists under a direction* iff the system has an integer
solution (decided exactly by the Omega test).

Directions are expressed as :class:`DirItem` tuples; helper constructors
cover the common cases used by the schedules:

- ``same_loop(loop, rel)``: relate the two instances' iterations of one
  common loop (``rel`` in ``< <= = >= > !=`` applies as
  ``later REL earlier``);
- ``cross_loop(earlier_loop, later_loop, rel)``: relate the *normalised*
  (begin-subtracted) iterations of two different loops — used by ``fuse``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir import stmt as S
from ..polyhedral import (Affine, AffineBuilder, LinCon, NonAffine,
                          is_feasible)
from .access import Access, collect_accesses

#: memo of feasibility verdicts keyed by *content signatures* of the access
#: pair plus the direction query. Because the key captures everything the
#: decision depends on (domains, indices, guards, loop identities, textual
#: order), it is shared process-wide: re-analysing a program after a
#: schedule primitive only pays for pairs in subtrees the primitive
#: actually rewrote — unchanged subtrees produce identical signatures and
#: hit the memo.
_PAIR_MEMO: Dict[tuple, bool] = {}
_PAIR_MEMO_LIMIT = 1 << 20

_STATS = {"hits": 0, "misses": 0}


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_ANALYSIS_CACHE", "") != "1"


def clear_analysis_cache():
    """Drop the global dependence-feasibility memo (counters are kept)."""
    _PAIR_MEMO.clear()


def analysis_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the dependence-feasibility memo."""
    return dict(_STATS)


def _access_signature(a: Access) -> tuple:
    """Content signature of an access: everything ``_dep_exists`` reads.

    Deliberately sid-free: schedule primitives mint fresh sids for the
    loops they create, so a sid-keyed memo would never hit across tuner
    rounds even when the trees are structurally identical. The feasibility
    verdict only depends on loop *content* (iteration variable, bounds),
    plus pair-level facts — common-prefix length and direction-item
    positions — that ``_dep_exists`` folds into the memo key itself.
    """
    if a.cached_sig is None:
        a.cached_sig = (
            a.tensor,
            None if a.indices is None else tuple(i.key() for i in a.indices),
            a.is_write,
            a.reduce_op,
            tuple((l.iter_var, l.begin.key(), l.end.key()) for l in a.loops),
            tuple((c.key(), pol) for c, pol in a.conds),
            a.def_depth,
        )
    return a.cached_sig

_REL_BUILDERS = {
    "<": LinCon.lt,
    "<=": LinCon.le,
    "=": LinCon.eq,
    ">=": LinCon.ge,
    ">": LinCon.gt,
}


class DirItem:
    """One direction constraint of a dependence query."""

    __slots__ = ("earlier_loop", "later_loop", "rel")

    def __init__(self, earlier_loop: str, later_loop: str, rel: str):
        if rel not in ("<", "<=", "=", ">=", ">", "!="):
            raise ValueError(f"bad direction relation {rel!r}")
        self.earlier_loop = earlier_loop  # loop sid
        self.later_loop = later_loop
        self.rel = rel

    @staticmethod
    def same_loop(loop_sid: str, rel: str) -> "DirItem":
        return DirItem(loop_sid, loop_sid, rel)

    @staticmethod
    def cross_loop(earlier_sid: str, later_sid: str, rel: str) -> "DirItem":
        return DirItem(earlier_sid, later_sid, rel)

    def __repr__(self):  # pragma: no cover
        return f"dir({self.later_loop} {self.rel} {self.earlier_loop})"


class Dependence:
    """A witnessed dependence between two access sites."""

    __slots__ = ("tensor", "earlier", "later", "kind")

    def __init__(self, tensor: str, earlier: Access, later: Access):
        self.tensor = tensor
        self.earlier = earlier
        self.later = later
        if earlier.is_write and later.is_write:
            self.kind = "WAW"
        elif earlier.is_write:
            self.kind = "RAW"
        else:
            self.kind = "WAR"

    def __repr__(self):
        return (f"{self.kind} on {self.tensor!r}: "
                f"{self.earlier.stmt.sid} -> {self.later.stmt.sid}")


class DepAnalyzer:
    """Dependence query engine over one function body.

    An analyzer can be kept alive across schedule primitives: after a
    primitive rewrites the tree, call :meth:`refresh` with the new root.
    Access lists are re-collected (one linear walk), but feasibility
    verdicts are memoized by *content*, so only pairs involving rewritten
    subtrees are re-decided — the expensive polyhedral work is incremental
    even though the scan is not.
    """

    def __init__(self, node):
        self.root = node
        self.accesses = collect_accesses(node)
        # bucket accesses by tensor once; find() reuses the buckets
        self._by_tensor: Dict[str, List[Access]] = {}
        for a in self.accesses:
            self._by_tensor.setdefault(a.tensor, []).append(a)

    def refresh(self, node) -> "DepAnalyzer":
        """Re-scan a (possibly rewritten) tree; keeps memoized verdicts
        for unchanged access pairs. No-op when ``node`` is already the
        analyzer's root."""
        if node is not self.root:
            self.__init__(node)
        return self

    # -- public queries -----------------------------------------------------
    def find(self,
             direction: Sequence[DirItem] = (),
             tensors: Optional[Iterable[str]] = None,
             earlier_in: Optional[str] = None,
             later_in: Optional[str] = None,
             either_in: Optional[str] = None,
             ignore_reduce_pairs: bool = True,
             first_only: bool = False) -> List[Dependence]:
        """Dependences matching the filters and direction constraints.

        ``earlier_in`` / ``later_in`` / ``either_in`` restrict accesses to
        a statement subtree by sid. ``ignore_reduce_pairs`` drops pairs of
        same-op ReduceTo accesses (commutative reorderable, Fig. 12(c)).
        """
        tensors = set(tensors) if tensors is not None else None
        out: List[Dependence] = []
        for earlier, later in self._pairs(tensors, ignore_reduce_pairs):
            if earlier_in is not None and earlier_in not in earlier.ancestors:
                continue
            if later_in is not None and later_in not in later.ancestors:
                continue
            if either_in is not None and either_in not in earlier.ancestors \
                    and either_in not in later.ancestors:
                continue
            if self._no_deps_filtered(earlier, later, direction):
                continue
            if self._dep_exists(earlier, later, tuple(direction)):
                out.append(Dependence(earlier.tensor, earlier, later))
                if first_only:
                    return out
        return out

    def has_dep(self, **kwargs) -> bool:
        return bool(self.find(first_only=True, **kwargs))

    def pair_feasible(self, earlier: Access, later: Access,
                      direction: Sequence[DirItem] = ()) -> bool:
        """May some instance of ``earlier`` precede and alias some
        instance of ``later``? The single-pair form of :meth:`find`,
        used by the verifier's def-use and dead-write analyses."""
        return self._dep_exists(earlier, later, tuple(direction))

    # -- pair enumeration -------------------------------------------------------
    def _pairs(self, tensors, ignore_reduce_pairs):
        if tensors is None:
            buckets = self._by_tensor.values()
        else:
            buckets = [self._by_tensor[t] for t in tensors
                       if t in self._by_tensor]
        for accs in buckets:
            for a in accs:  # earlier
                for b in accs:  # later
                    if not (a.is_write or b.is_write):
                        continue
                    if ignore_reduce_pairs and a.reduce_op is not None \
                            and a.reduce_op == b.reduce_op:
                        continue
                    yield a, b

    @staticmethod
    def _no_deps_filtered(earlier, later, direction) -> bool:
        """User no_deps annotations silence deps carried by a loop."""
        for it in direction:
            if it.rel == "=":
                continue
            for loop in earlier.loops + later.loops:
                if loop.sid in (it.earlier_loop, it.later_loop) \
                        and earlier.tensor in loop.property.no_deps:
                    return True
        return False

    # -- the core feasibility test ---------------------------------------------
    def _dep_exists(self, earlier: Access, later: Access,
                    direction: Tuple[DirItem, ...]) -> bool:
        if not _cache_enabled():
            return self._dep_exists_uncached(earlier, later, direction)
        # Common-prefix length: both loop chains are root-to-leaf ancestor
        # paths in one tree, so shared loops are exactly a shared prefix of
        # identical objects.
        n_common = 0
        for le, ll in zip(earlier.loops, later.loops):
            if le is not ll:
                break
            n_common += 1
        # Direction items name loops by sid; canonicalise to positions in
        # the two loop chains so the key survives sid renaming. A referenced
        # loop that encloses neither access decides the query (no dep) the
        # same way the full test would.
        canon_dir = ()
        if direction:
            pos_e = {l.sid: k for k, l in enumerate(earlier.loops)}
            pos_l = {l.sid: k for k, l in enumerate(later.loops)}
            items = []
            for d in direction:
                pe = pos_e.get(d.earlier_loop)
                pl = pos_l.get(d.later_loop)
                if pe is None or pl is None:
                    return False
                items.append((pe, pl, d.rel))
            canon_dir = tuple(items)
        key = (_access_signature(earlier), _access_signature(later),
               n_common, earlier.order < later.order, canon_dir)
        hit = _PAIR_MEMO.get(key)
        if hit is not None:
            _STATS["hits"] += 1
            return hit
        _STATS["misses"] += 1
        result = self._dep_exists_uncached(earlier, later, direction)
        if len(_PAIR_MEMO) >= _PAIR_MEMO_LIMIT:  # pragma: no cover
            _PAIR_MEMO.clear()
        _PAIR_MEMO[key] = result
        return result

    def _dep_exists_uncached(self, earlier, later, direction) -> bool:
        e_ren = {l.iter_var: f"$s{k}" for k, l in enumerate(earlier.loops)}
        l_ren = {l.iter_var: f"$t{k}" for k, l in enumerate(later.loops)}

        base: List[LinCon] = []
        if not self._domain(earlier, e_ren, base):
            return False
        if not self._domain(later, l_ren, base):
            return False

        # May-alias: equate affine index pairs dimension-wise.
        if earlier.indices is not None and later.indices is not None:
            if len(earlier.indices) != len(later.indices):
                return True  # malformed; be conservative
            for ie, il in zip(earlier.indices, later.indices):
                ae = _affine_of(ie, e_ren, base)
                al = _affine_of(il, l_ren, base)
                if ae is None or al is None:
                    continue  # non-affine: may match anything
                base.append(LinCon.eq(ae, al))

        # Common loops and stack-scope projection.
        n_common = 0
        for le, ll in zip(earlier.loops, later.loops):
            if le.sid != ll.sid:
                break
            n_common += 1
        def_depth = min(earlier.def_depth, later.def_depth, n_common)
        for k in range(def_depth):
            base.append(
                LinCon.eq(Affine.var(f"$s{k}"), Affine.var(f"$t{k}")))

        # Direction constraints.
        sid2e = {l.sid: f"$s{k}" for k, l in enumerate(earlier.loops)}
        sid2l = {l.sid: f"$t{k}" for k, l in enumerate(later.loops)}
        e_begin = {l.sid: l.begin for l in earlier.loops}
        l_begin = {l.sid: l.begin for l in later.loops}
        alternates: List[List[LinCon]] = [[]]
        for item in direction:
            if item.earlier_loop not in sid2e or \
                    item.later_loop not in sid2l:
                return False  # the loop does not enclose the access
            ev = Affine.var(sid2e[item.earlier_loop])
            lv = Affine.var(sid2l[item.later_loop])
            if item.earlier_loop != item.later_loop:
                # normalise to begin-relative positions for cross-loop dirs
                eb = _affine_of(e_begin[item.earlier_loop], e_ren, base)
                lb = _affine_of(l_begin[item.later_loop], l_ren, base)
                if eb is None or lb is None:
                    return True  # cannot reason; conservative
                ev = ev - eb
                lv = lv - lb
            if item.rel == "!=":
                alternates = [alt + [c] for alt in alternates
                              for c in (LinCon.lt(lv, ev),
                                        LinCon.gt(lv, ev))]
            else:
                con = _REL_BUILDERS[item.rel](lv, ev)
                alternates = [alt + [con] for alt in alternates]

        # Execution order: earlier precedes later (lexicographic on common
        # loops, pre-order position as the tie-break).
        order_alts: List[List[LinCon]] = []
        for k in range(n_common):
            cons = [
                LinCon.eq(Affine.var(f"$s{j}"), Affine.var(f"$t{j}"))
                for j in range(k)
            ]
            cons.append(LinCon.lt(Affine.var(f"$s{k}"),
                                  Affine.var(f"$t{k}")))
            order_alts.append(cons)
        if earlier.order < later.order:
            order_alts.append([
                LinCon.eq(Affine.var(f"$s{j}"), Affine.var(f"$t{j}"))
                for j in range(n_common)
            ] if n_common else [])

        for dir_alt in alternates:
            for ord_alt in order_alts:
                if is_feasible(base + dir_alt + ord_alt):
                    return True
        return False

    @staticmethod
    def _domain(acc: Access, rename, out: List[LinCon]) -> bool:
        """Append iteration-domain constraints; False if domain is void."""
        for k, loop in enumerate(acc.loops):
            iv = Affine.var(rename[loop.iter_var])
            b = _affine_of(loop.begin, rename, out)
            e = _affine_of(loop.end, rename, out)
            if b is not None:
                out.append(LinCon.ge(iv, b))
            if e is not None:
                out.append(LinCon.lt(iv, e))
        for cond, polarity in acc.conds:
            builder = AffineBuilder(rename)
            try:
                alts = builder.build_condition(cond, not polarity)
            except NonAffine:
                continue  # unknown guard: conservative (no constraint)
            if len(alts) == 1:
                out.extend(builder.extra_cons)
                out.extend(alts[0])
            # disjunctive guards are dropped (over-approximation)
        return True


def _affine_of(expr, rename, out_cons: List[LinCon]) -> Optional[Affine]:
    builder = AffineBuilder(rename)
    try:
        a = builder.build(expr)
    except NonAffine:
        return None
    out_cons.extend(builder.extra_cons)
    return a


def analyze(node) -> DepAnalyzer:
    """Build a dependence analyzer for a Func or statement tree."""
    return DepAnalyzer(node)


def analyzer_for(func, analyzer: Optional[DepAnalyzer] = None) -> DepAnalyzer:
    """A dependence analyzer valid for ``func``.

    Schedule primitives accept an optional persistent analyzer (owned by
    the Schedule); this refreshes it against ``func`` when needed, or
    builds a fresh one. With ``REPRO_NO_ANALYSIS_CACHE=1`` a fresh
    analyzer is always built (the escape hatch for differential testing).
    """
    if analyzer is None or not _cache_enabled():
        return DepAnalyzer(func)
    return analyzer.refresh(func)

"""Exception hierarchy for the FreeTensor reproduction.

All user-facing errors raised by the compiler derive from
:class:`FreeTensorError` so applications can catch one type.
"""

from __future__ import annotations


class FreeTensorError(Exception):
    """Base class of all errors raised by this package."""


class StagingError(FreeTensorError):
    """Raised when the Python-to-IR frontend cannot stage a construct."""


class InvalidProgram(FreeTensorError):
    """Raised when an IR program is malformed (unknown vars, bad shapes...)."""


class InvalidSchedule(FreeTensorError):
    """Raised when a schedule transformation is illegal.

    A transformation is illegal either because the target statements do not
    exist / do not have the required structure, or because dependence
    analysis proves the transformation would change program semantics.
    """


class DependenceViolation(InvalidSchedule):
    """An :class:`InvalidSchedule` specifically caused by a dependence.

    ``dependences`` holds the blocking dependences as the same structured
    ``Diagnostic`` objects the verifier (``repro.verify``) emits — each
    carries an error code (``FT200``), the offending statement's sid and
    Python source span, and the underlying ``Dependence`` object in its
    ``source`` attribute. The raw ``Dependence`` tuple is kept in
    ``raw_dependences``.
    """

    def __init__(self, message: str, dependences=()):
        super().__init__(message)
        raw = tuple(dependences)
        self.raw_dependences = raw
        from .analysis.verify.diagnostics import dependence_diagnostic

        self.dependences = tuple(dependence_diagnostic(d) for d in raw)

    def render(self) -> str:
        """The message plus every blocking dependence with source spans."""
        parts = [str(self)]
        parts.extend(d.render() for d in self.dependences)
        return "\n".join(parts)


class VerificationError(FreeTensorError):
    """Raised when ``repro.verify`` (or a ``build(..., verify=True)``
    gate) finds error-severity diagnostics. ``diagnostics`` is the full
    :class:`~repro.analysis.verify.diagnostics.Diagnostics` report."""

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = diagnostics


class ADError(FreeTensorError):
    """Raised when automatic differentiation cannot handle a construct."""


class BackendError(FreeTensorError):
    """Raised when code generation or native compilation fails."""


class SimulatedOOM(FreeTensorError):
    """Raised by the simulated device when an allocation exceeds capacity.

    Mirrors the paper's OOM outcomes in Figure 16(b) and Figure 18.
    """

    def __init__(self, message: str, requested: int = 0, capacity: int = 0):
        super().__init__(message)
        self.requested = requested
        self.capacity = capacity

"""CLI: ``python -m repro.verify <target> [...]``.

Targets are paper workload names (``subdivnet``, ``longformer``,
``softras``, ``gat``), the word ``all``, or paths to Python files that
define staged programs (every ``repro.Program`` found in the file's
namespace is verified).

Exits non-zero iff any target has error-severity findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Tuple

from ..analysis.verify import verify
from ..errors import VerificationError
from ..frontend.staging import Program


def _workload_targets(names) -> List[Tuple[str, object]]:
    from ..workloads import ALL

    out = []
    for name in names:
        if name not in ALL:
            raise SystemExit(
                f"unknown workload {name!r}; choose from "
                f"{sorted(ALL)} or pass a .py file")
        out.append((name, ALL[name].make_program()))
    return out


def _file_targets(path: str) -> List[Tuple[str, object]]:
    namespace = {"__name__": f"<verify {os.path.basename(path)}>",
                 "__file__": os.path.abspath(path)}
    with open(path) as f:
        code = compile(f.read(), os.path.abspath(path), "exec")
    exec(code, namespace)
    out = [(f"{os.path.basename(path)}:{k}", v)
           for k, v in namespace.items() if isinstance(v, Program)]
    if not out:
        raise SystemExit(f"{path}: no staged repro.Program objects found")
    return out


def _cost_env(name: str, func) -> dict:
    """Concrete shape values for a *workload* target, from its default
    ``make_data()`` (file targets analyze symbolically)."""
    from ..analysis.cost import infer_scalar_env
    from ..workloads import ALL

    mod = ALL.get(name)
    if mod is None or not hasattr(mod, "make_data"):
        return {}
    data = mod.make_data()
    # workload program params are named after the data dict's keys;
    # ints in the dict (e.g. longformer's window) are scalar params
    return infer_scalar_env(func, data, data)


def _render_cost(est, findings) -> str:
    c = est.counts
    tag = "exact" if est.exact else ("sound" if est.sound
                                     else "approximate")
    lines = [
        f"cost [{est.backend}/{est.target_name}] ({tag}):",
        f"  ops: {c.flops} flops, {c.int_ops} int, {c.loads} loads, "
        f"{c.stores} stores, {c.reduces} reduces, "
        f"{c.lib_calls} lib calls, {c.iters} loop iters",
        f"  time proxy {est.time_proxy:.1f}  "
        f"parallelism {est.parallelism:.2f}x  "
        f"stride penalty {est.stride_penalty:.0f}  "
        f"footprint {est.footprint_bytes} B",
    ]
    rows = sorted(est.loops, key=lambda r: -r.total_ops)[:5]
    if rows:
        lines.append("  hottest loops:")
        for r in rows:
            mark = r.parallel or ("vectorize" if r.vectorize else "seq")
            lines.append(
                f"    {r.sid} for {r.iter_var}: trip {r.trip}"
                f"{'' if r.exact else '~'} x{r.execs} [{mark}] "
                f"{r.total_ops} ops")
    if est.traffic:
        lines.append("  traffic:")
        for name in sorted(est.traffic):
            t = est.traffic[name]
            lines.append(
                f"    {name}: {t.reads} reads / {t.writes} writes, "
                f"~{t.bytes:.0f} B, innermost {t.stride_class}")
    for d in findings:
        lines.append(f"  {d.code}: {d.message}")
    return "\n".join(lines)


def _diag_json(d) -> dict:
    return {
        "code": d.code,
        "severity": d.severity,
        "message": d.message,
        "sid": d.sid,
        "file": d.span[0] if d.span else None,
        "line": d.span[1] if d.span else None,
        "tensor": d.tensor,
        "path": list(d.path),
    }


def _backend_choices() -> List[str]:
    """Every registered backend, runnable or not: the cost model only
    reads capability tables, so codegen-only backends (cuda) are valid."""
    from ..backend import available_backends

    return available_backends(runnable_only=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Statically verify staged programs "
                    "(bounds, races, def-use, lint).")
    parser.add_argument("targets", nargs="+",
                        help="workload names, 'all', or .py files")
    parser.add_argument("--level", default="warning",
                        choices=("error", "warning", "info"),
                        help="least severe finding to report")
    parser.add_argument("--optimize", action="store_true",
                        help="auto-schedule each program before verifying "
                             "(checks the IR the backends actually see)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--no-source", action="store_true",
                        help="do not print source lines under findings")
    parser.add_argument("--cost", action="store_true",
                        help="also report the static cost model: op "
                             "counts, loop trips, memory traffic, "
                             "parallelism, and FT5xx perf findings")
    parser.add_argument("--backend", default="pycode",
                        choices=_backend_choices(),
                        help="backend whose capability table the cost "
                             "model uses (with --cost)")
    args = parser.parse_args(argv)

    names: List[str] = []
    files: List[str] = []
    for t in args.targets:
        if t == "all":
            from ..workloads import ALL

            names.extend(n for n in sorted(ALL) if n not in names)
        elif t.endswith(".py") or os.path.sep in t:
            files.append(t)
        else:
            names.append(t)

    targets = _workload_targets(names)
    for path in files:
        targets.extend(_file_targets(path))

    failed = 0
    json_out = []
    for name, prog in targets:
        func = prog.func
        try:
            if args.optimize:
                # the same Pipeline construction build(optimize=True)
                # uses, so CLI-verified IR is bit-identical (same
                # struct_hash) to what a build compiles
                from ..pipeline import compile_ir

                func = compile_ir(func, optimize=True)
            elif os.environ.get("REPRO_VERIFY_EACH_PASS", "") == "1":
                # raw mode still reports on the staged IR, but run the
                # standard build pipeline so per-pass verification
                # covers every lowering pass too
                from ..pipeline import compile_ir

                compile_ir(func, optimize=False)
        except VerificationError as exc:
            failed += 1
            if args.as_json:
                json_out.append({"target": name, "errors": 1,
                                 "warnings": 0, "findings": [],
                                 "pipeline_error": str(exc)})
            else:
                print(f"== {name} ==")
                print(exc)
                print()
            continue
        report = verify(func, level=args.level)
        if report.has_errors:
            failed += 1
        cost = perf = None
        if args.cost:
            from ..analysis.cost import analyze_cost, perf_lint

            env = _cost_env(name, func)
            cost = analyze_cost(func, backend=args.backend,
                                scalar_env=env)
            perf = perf_lint(func, backend=args.backend)
        if args.as_json:
            entry = {
                "target": name,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "findings": [_diag_json(d) for d in report.diags],
            }
            if cost is not None:
                entry["cost"] = cost.as_dict()
                entry["cost"]["perf_findings"] = [_diag_json(d)
                                                  for d in perf]
            json_out.append(entry)
        else:
            print(f"== {name} ==")
            print(report.render(show_source=not args.no_source,
                                base_dir=os.getcwd()))
            if cost is not None:
                print(_render_cost(cost, perf))
            print()

    from ..runtime.metrics import verifier_stats

    if args.as_json:
        print(json.dumps({"targets": json_out,
                          "stats": verifier_stats()}, indent=2))
    else:
        stats = verifier_stats()
        print(f"verified {stats['runs']} function(s): "
              f"{stats['passed']} passed, {stats['failed']} failed "
              f"({stats['errors']} error(s), "
              f"{stats['warnings']} warning(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""``repro.verify`` — the user-facing door to the whole-program verifier.

Usable three ways:

- as a function: ``repro.verify(func_or_program, level=...)`` returns a
  :class:`~repro.analysis.verify.diagnostics.Diagnostics` report (this
  module is callable);
- as a build gate: ``repro.build(prog, verify=True)`` or ``REPRO_VERIFY=1``
  raises :class:`~repro.errors.VerificationError` on errors;
- as a CLI: ``python -m repro.verify <workload|file.py> ...`` pretty-prints
  findings with source carets (see ``__main__.py``).
"""

import sys as _sys
import types as _types

from ..analysis.verify import (ANALYSES, SEVERITIES, Diagnostic,
                               Diagnostics, verify)

__all__ = [
    "ANALYSES", "Diagnostic", "Diagnostics", "SEVERITIES", "verify",
]


class _CallableModule(_types.ModuleType):
    """Lets ``repro.verify(...)`` be called directly while remaining an
    importable package (``python -m repro.verify`` still works)."""

    def __call__(self, *args, **kwargs):
        return verify(*args, **kwargs)


_sys.modules[__name__].__class__ = _CallableModule

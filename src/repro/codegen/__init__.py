"""Code generators: Python/NumPy, C/OpenMP (native), and CUDA (source)."""

from .pycode import PyCodegen, compile_func

__all__ = ["PyCodegen", "compile_func"]

"""CUDA backend: IR -> CUDA C++ source (text).

There is no GPU (or nvcc) in this environment, so this backend emits the
source a GPU build would compile — outermost loops bound to
``cuda.blockIdx.*`` / ``cuda.threadIdx.*`` become ``__global__`` kernels
with grid/block launches, ``gpu/shared`` tensors become ``__shared__``
arrays, and atomic reductions use ``atomicAdd``. Output is validated by
golden tests; *execution* of CUDA-scheduled programs happens on the
simulated device (``repro.runtime.gpusim``), which interprets the same IR.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import BackendError
from ..ir import (DataType, For, Func, MemType, Stmt, VarDef)
from ..ir import stmt as S
from ..pipeline.legalize import legalize
from .ccode import CCodegen, _CTYPE

# nvcc shares gcc's restrictions on what may appear inside a simd
# region; simd_suppress is declared on the "cuda" Backend object in
# repro.backend.builtin

_AXES = {"x": 0, "y": 1, "z": 2}


def _parallel_kind(loop: For) -> Tuple[str, str]:
    """("block"| "thread", axis) for a CUDA-annotated loop."""
    p = loop.property.parallel or ""
    if p.startswith("cuda.blockIdx."):
        return "block", p[-1]
    if p.startswith("cuda.threadIdx."):
        return "thread", p[-1]
    return "", ""


class CUDACodegen(CCodegen):
    """Generates one translation unit: kernels plus a host entry."""

    def __init__(self, func: Func):
        super().__init__(func)
        self.kernels: List[str] = []
        self._kernel_id = 0

    # -- statement overrides --------------------------------------------------
    def pstmt(self, s: Stmt, indent: int):
        if isinstance(s, S.ReduceTo) and s.atomic:
            if s.op == "+":
                self.line(indent,
                          f"atomicAdd(&{self._index(s.var, s.indices)}, "
                          f"{self.pexpr(s.expr)});")
                return
            if s.op in ("min", "max"):
                fn = "atomicMin" if s.op == "min" else "atomicMax"
                self.line(indent,
                          f"{fn}(&{self._index(s.var, s.indices)}, "
                          f"{self.pexpr(s.expr)});")
                return
        super().pstmt(s, indent)

    def _gen_vardef(self, s: VarDef, indent: int):
        if s.name in self.param_set:
            self.pstmt(s.body, indent)
            return
        name = self.mangle(s.name)
        ct = _CTYPE[s.dtype]
        if s.mtype is MemType.GPU_SHARED:
            size = " * ".join(f"({self.pexpr(d)})"
                              for d in s.shape) or "1"
            self.line(indent, f"__shared__ {ct} {name}[{size}];")
            self.pstmt(s.body, indent)
            return
        if s.ndim == 0 or s.mtype is MemType.GPU_LOCAL:
            if s.ndim == 0:
                self.scalar_vars.add(s.name)
                self.line(indent, f"{ct} {name} = 0;")
            else:
                size = " * ".join(f"({self.pexpr(d)})"
                                  for d in s.shape) or "1"
                self.line(indent, f"{ct} {name}[{size}];")
            self.pstmt(s.body, indent)
            return
        # global-memory temporaries inside kernels are not supported; a
        # schedule should set_mtype them or hoist them out
        super()._gen_vardef(s, indent)

    def _gen_for(self, s: For, indent: int):
        kind, axis = _parallel_kind(s)
        it = self.mangle(s.iter_var)
        if kind:
            src = f"blockIdx.{axis}" if kind == "block" \
                else f"threadIdx.{axis}"
            self.line(indent,
                      f"int64_t {it} = {self.pexpr(s.begin)} + "
                      f"(int64_t){src};")
            self.line(indent, f"if ({it} < {self.pexpr(s.end)}) {{")
            self.pstmt(s.body, indent + 1)
            self.line(indent, "}")
            return
        super()._gen_for(s, indent)

    # -- kernel extraction ------------------------------------------------------
    def _collect_parallel_dims(self, s: Stmt, grid, block):
        if isinstance(s, For):
            kind, axis = _parallel_kind(s)
            if kind == "block":
                grid[_AXES[axis]] = self.pexpr(s.len)
            elif kind == "thread":
                block[_AXES[axis]] = self.pexpr(s.len)
        for c in s.children_stmts():
            self._collect_parallel_dims(c, grid, block)

    def _emit_kernel(self, root: Stmt, host_indent: int):
        kid = self._kernel_id
        self._kernel_id += 1
        grid = ["1", "1", "1"]
        block = ["1", "1", "1"]
        self._collect_parallel_dims(root, grid, block)
        args = []
        for p in self.interface:
            args.append(f"{_CTYPE[self.defs[p].dtype]}* "
                        f"{self.mangle(p)}")
        for p in self.func.scalar_params:
            args.append(f"int64_t {self.mangle(p)}")
        saved = self.lines
        self.lines = []
        self.line(0, f"__global__ void kernel{kid}("
                     f"{', '.join(args)}) {{")
        self.pstmt(root, 1)
        self.line(0, "}")
        self.kernels.append("\n".join(self.lines))
        self.lines = saved
        call_args = [self.mangle(p) for p in self.interface]
        call_args += [self.mangle(p) for p in self.func.scalar_params]
        self.line(host_indent,
                  f"kernel{kid}<<<dim3({', '.join(grid)}), "
                  f"dim3({', '.join(block)})>>>("
                  f"{', '.join(call_args)});")

    def _gen_host(self, s: Stmt, indent: int):
        if isinstance(s, S.StmtSeq):
            for c in s.stmts:
                self._gen_host(c, indent)
            return
        if isinstance(s, VarDef):
            if s.name in self.param_set:
                self._gen_host(s.body, indent)
                return
            name = self.mangle(s.name)
            ct = _CTYPE[s.dtype]
            size = " * ".join(f"(size_t)({self.pexpr(d)})"
                              for d in s.shape) or "1"
            self.line(indent, f"{ct}* {name};")
            self.line(indent, f"cudaMalloc(&{name}, ({size}) * "
                              f"sizeof({ct}));")
            self._gen_host(s.body, indent)
            self.line(indent, f"cudaFree({name});")
            return
        if isinstance(s, For):
            kind, _axis = _parallel_kind(s)
            if kind:
                self._emit_kernel(s, indent)
                return
            it = self.mangle(s.iter_var)
            self.line(indent,
                      f"for (int64_t {it} = {self.pexpr(s.begin)}; "
                      f"{it} < {self.pexpr(s.end)}; {it}++) {{")
            self._gen_host(s.body, indent + 1)
            self.line(indent, "}")
            return
        if isinstance(s, S.LibCall):
            if s.kind == "matmul":
                c = s.outs[0]
                self.line(indent, f"// cublasSgemm -> {self.mangle(c)}")
                return
            self._emit_kernel(s, indent)
            return
        # any other statement at host level runs as a tiny kernel
        self._emit_kernel(s, indent)

    def generate(self) -> str:
        self.lines = []
        args = []
        for p in self.interface:
            args.append(f"{_CTYPE[self.defs[p].dtype]}* "
                        f"{self.mangle(p)}")
        for p in self.func.scalar_params:
            args.append(f"int64_t {self.mangle(p)}")
        self.line(0, f"extern \"C\" void entry({', '.join(args)}) {{")
        self._gen_host(self.func.body, 1)
        self.line(1, "cudaDeviceSynchronize();")
        self.line(0, "}")
        host = "\n".join(self.lines)
        header = ("#include <cstdint>\n#include <cuda_runtime.h>\n"
                  "#include <math.h>\n\n"
                  "static __device__ __host__ inline int64_t "
                  "ft_floordiv(int64_t a, int64_t b) {\n"
                  "    int64_t q = a / b, r = a % b;\n"
                  "    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : "
                  "q;\n}\n"
                  "static __device__ __host__ inline int64_t "
                  "ft_mod(int64_t a, int64_t b) {\n"
                  "    int64_t r = a % b;\n"
                  "    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : "
                  "r;\n}\n"
                  "static __device__ inline double ft_sigmoid(double x) "
                  "{ return 1.0/(1.0+exp(-x)); }\n")
        return header + "\n" + "\n\n".join(self.kernels) + "\n\n" + host \
            + "\n"


def generate_cuda(func: Func) -> str:
    """CUDA C++ source for a (CUDA-scheduled) Func."""
    # idempotent when the build pipeline already legalized; keeps direct
    # generate_cuda() callers correct
    func = legalize(func, "cuda")
    return CUDACodegen(func).generate()

"""Python/NumPy backend: compiles IR to Python source.

Scalar statements become plain Python loops over NumPy buffers. Loops marked
``vectorize`` by a schedule (or by ``auto_vectorize``) are lowered to
whole-width NumPy kernels when the loop body is a single (or independent
multiple) Store/ReduceTo: the loop iterator becomes an index vector, loads
become gathers, and reductions become ``sum``/``minimum``/``np.add.at``.
This realises the paper's ``vectorize`` transformation on this
reproduction's NumPy substrate, where a vector "instruction" is a NumPy
kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import BackendError
from ..ir import expr as E
from ..ir import stmt as S

# legalization: none — this backend interprets vectorize markings itself
# (declared on the pycode Backend object in repro.backend.builtin)

_SCALAR_INTRIN = {
    "abs": "abs",
    "sqrt": "math.sqrt",
    "exp": "math.exp",
    "log": "math.log",
    "sin": "math.sin",
    "cos": "math.cos",
    "tan": "math.tan",
    "tanh": "math.tanh",
    "sigmoid": "_sigmoid",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "erf": "math.erf",
    "unbound_min": "min",
    "unbound_max": "max",
}

_VECTOR_INTRIN = {
    "abs": "np.abs",
    "sqrt": "np.sqrt",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "tanh": "np.tanh",
    "sigmoid": "_np_sigmoid",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "erf": "_np_erf",
    "unbound_min": "np.minimum",
    "unbound_max": "np.maximum",
}

_PRELUDE = '''\
import math

import numpy as np


def _sigmoid(x):
    return 1.0 / (1.0 + math.exp(-x))


def _np_sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def _np_erf(x):
    from scipy.special import erf as _erf

    return _erf(x)
'''


class PyCodegen:
    """Generates a Python callable ``kernel(env)`` from a Func."""

    def __init__(self, func: S.Func):
        self.func = func
        self.lines: List[str] = []
        self.names: Dict[str, str] = {}
        self.taken = set()
        self.consts: Dict[str, object] = {}
        self.scalar_vars = set()  # IR names lowered to plain Python scalars
        self.interface = func.interface_tensors()
        self.param_set = set(self.interface) | set(func.scalar_params)
        self._vec_counter = 0

    # -- names --------------------------------------------------------------
    def mangle(self, name: str) -> str:
        if name not in self.names:
            base = "v_" + "".join(c if c.isalnum() or c == "_" else "_"
                                  for c in name)
            out = base
            i = 1
            while out in self.taken:
                out = f"{base}_{i}"
                i += 1
            self.taken.add(out)
            self.names[name] = out
        return self.names[name]

    def line(self, indent: int, text: str):
        self.lines.append("    " * indent + text)

    # -- expressions ----------------------------------------------------------
    def pexpr(self, e: E.Expr, vec: Optional[Dict[str, str]] = None) -> str:
        p = lambda x: self.pexpr(x, vec)
        if isinstance(e, E.IntConst):
            return repr(e.val)
        if isinstance(e, E.FloatConst):
            v = e.val
            if v != v:
                return "float('nan')"
            if v in (float("inf"), float("-inf")):
                return f"float('{'-' if v < 0 else ''}inf')"
            return repr(v)
        if isinstance(e, E.BoolConst):
            return "True" if e.val else "False"
        if isinstance(e, E.Var):
            if vec and e.name in vec:
                return vec[e.name]
            return self.mangle(e.name)
        if isinstance(e, E.Load):
            name = self.mangle(e.var)
            if e.var in self.scalar_vars:
                return name
            if not e.indices:
                return f"{name}[()]"
            return f"{name}[{', '.join(p(i) for i in e.indices)}]"
        if isinstance(e, E.Add):
            return f"({p(e.lhs)} + {p(e.rhs)})"
        if isinstance(e, E.Sub):
            return f"({p(e.lhs)} - {p(e.rhs)})"
        if isinstance(e, E.Mul):
            return f"({p(e.lhs)} * {p(e.rhs)})"
        if isinstance(e, E.RealDiv):
            return f"({p(e.lhs)} / {p(e.rhs)})"
        if isinstance(e, E.FloorDiv):
            return f"({p(e.lhs)} // {p(e.rhs)})"
        if isinstance(e, E.Mod):
            return f"({p(e.lhs)} % {p(e.rhs)})"
        if isinstance(e, E.Min):
            fn = "np.minimum" if vec is not None else "min"
            return f"{fn}({p(e.lhs)}, {p(e.rhs)})"
        if isinstance(e, E.Max):
            fn = "np.maximum" if vec is not None else "max"
            return f"{fn}({p(e.lhs)}, {p(e.rhs)})"
        if isinstance(e, E.CmpOp):
            return f"({p(e.lhs)} {e.op_name} {p(e.rhs)})"
        if isinstance(e, E.LAnd):
            return f"({p(e.lhs)} & {p(e.rhs)})"
        if isinstance(e, E.LOr):
            return f"({p(e.lhs)} | {p(e.rhs)})"
        if isinstance(e, E.LNot):
            if vec is not None:
                return f"(~{p(e.operand)})"
            return f"(not {p(e.operand)})"
        if isinstance(e, E.IfExpr):
            if vec is not None:
                return (f"np.where({p(e.cond)}, {p(e.then_case)}, "
                        f"{p(e.else_case)})")
            return f"({p(e.then_case)} if {p(e.cond)} else {p(e.else_case)})"
        if isinstance(e, E.Cast):
            inner = p(e.operand)
            if vec is not None:
                return (f"np.asarray({inner}).astype(np."
                        f"{e.dtype.to_numpy().name})")
            if e.dtype.is_float:
                return f"float({inner})"
            if e.dtype.is_bool:
                return f"bool({inner})"
            return f"int({inner})"
        if isinstance(e, E.Intrinsic):
            table = _VECTOR_INTRIN if vec is not None else _SCALAR_INTRIN
            if e.name == "pow":
                return f"({p(e.args[0])} ** {p(e.args[1])})"
            return f"{table[e.name]}({', '.join(p(a) for a in e.args)})"
        raise BackendError(
            f"pycode cannot lower {type(e).__name__}")  # pragma: no cover

    # -- statements -----------------------------------------------------------
    def _target(self, s, vec=None) -> str:
        name = self.mangle(s.var)
        if s.var in self.scalar_vars:
            return name
        if not s.indices:
            return f"{name}[()]"
        return f"{name}[{', '.join(self.pexpr(i, vec) for i in s.indices)}]"

    def pstmt(self, s: S.Stmt, indent: int):
        if isinstance(s, S.StmtSeq):
            if not s.stmts:
                self.line(indent, "pass")
            for c in s.stmts:
                self.pstmt(c, indent)
            return
        if isinstance(s, S.VarDef):
            self._gen_vardef(s, indent)
            return
        if isinstance(s, S.For):
            self._gen_for(s, indent)
            return
        if isinstance(s, S.If):
            self.line(indent, f"if {self.pexpr(s.cond)}:")
            self.pstmt(s.then_case, indent + 1)
            if s.else_case is not None:
                self.line(indent, "else:")
                self.pstmt(s.else_case, indent + 1)
            return
        if isinstance(s, S.Store):
            self.line(indent, f"{self._target(s)} = {self.pexpr(s.expr)}")
            return
        if isinstance(s, S.ReduceTo):
            tgt = self._target(s)
            val = self.pexpr(s.expr)
            if s.op in ("+", "*"):
                self.line(indent, f"{tgt} {s.op}= {val}")
            else:
                self.line(indent, f"{tgt} = {s.op}({tgt}, {val})")
            return
        if isinstance(s, S.Assert):
            self.line(indent, f"assert {self.pexpr(s.cond)}")
            self.pstmt(s.body, indent)
            return
        if isinstance(s, S.Eval):
            self.line(indent, f"_ = {self.pexpr(s.expr)}")
            return
        if isinstance(s, (S.Alloc, S.Free)):
            return
        if isinstance(s, S.LibCall):
            outs = "[" + ", ".join(self.mangle(n) for n in s.outs) + "]"
            args = "[" + ", ".join(self.mangle(n) for n in s.args) + "]"
            self.line(
                indent,
                f"_libcall({s.kind!r}, {s.attrs!r}, {outs}, {args})")
            return
        raise BackendError(
            f"pycode cannot lower {type(s).__name__}")  # pragma: no cover

    def _gen_vardef(self, s: S.VarDef, indent: int):
        if s.name in self.param_set:
            self.pstmt(s.body, indent)
            return
        name = self.mangle(s.name)
        if s.init_data is not None:
            key = f"c{len(self.consts)}"
            self.consts[key] = s.init_data
            self.line(indent, f"{name} = _consts[{key!r}].copy()")
        elif s.ndim == 0:
            self.scalar_vars.add(s.name)
            self.line(indent, f"{name} = {self._zero_of(s)}")
        else:
            shape = ", ".join(self.pexpr(d) for d in s.shape)
            np_dt = s.dtype.to_numpy().name
            self.line(indent, f"{name} = np.empty(({shape},), np.{np_dt})")
        self.pstmt(s.body, indent)

    @staticmethod
    def _zero_of(s: S.VarDef) -> str:
        if s.dtype.is_float:
            return "0.0"
        if s.dtype.is_bool:
            return "False"
        return "0"

    # -- loops -----------------------------------------------------------------
    def _gen_for(self, s: S.For, indent: int):
        if s.property.vectorize and self._try_vectorize(s, indent):
            return
        it = self.mangle(s.iter_var)
        self.line(
            indent,
            f"for {it} in range({self.pexpr(s.begin)}, {self.pexpr(s.end)}):")
        self.pstmt(s.body, indent + 1)

    # -- vectorisation ------------------------------------------------------
    def _try_vectorize(self, s: S.For, indent: int) -> bool:
        if not loop_vectorizes(s):
            return False
        stmts = s.body.stmts if isinstance(s.body, S.StmtSeq) else [s.body]
        iv = s.iter_var
        vec_name = f"_vi{self._vec_counter}"
        self._vec_counter += 1
        begin, end = self.pexpr(s.begin), self.pexpr(s.end)
        self.line(indent, f"if {end} > {begin}:")
        indent += 1
        if any(_uses_var(c, iv) for c in stmts):
            self.line(indent, f"{vec_name} = np.arange({begin}, {end})")
        vec = {iv: vec_name}
        for c in stmts:
            self._gen_vec_stmt(c, iv, vec, indent)
        return True

    @staticmethod
    def _vec_feasible(c, iv: str) -> bool:
        tgt_dep = any(_expr_uses_var(ix, iv) for ix in c.indices)
        val_dep = _expr_uses_var(c.expr, iv)
        if isinstance(c, S.Store):
            # An iv-independent Store target would need "last write wins".
            return tgt_dep
        if tgt_dep:
            injective = all(
                not _expr_uses_var(ix, iv) or _is_unit_stride(ix, iv)
                for ix in c.indices)
            return injective or c.op == "+"
        return val_dep  # full-lane reduction into a fixed location

    def _gen_vec_stmt(self, c, iv, vec, indent):
        tgt_dep = any(_expr_uses_var(ix, iv) for ix in c.indices)
        val = self.pexpr(c.expr, vec)
        if isinstance(c, S.Store):
            self.line(indent, f"{self._target(c, vec)} = {val}")
            return
        if tgt_dep:
            injective = all(
                not _expr_uses_var(ix, iv) or _is_unit_stride(ix, iv)
                for ix in c.indices)
            tgt = self._target(c, vec)
            if injective:
                if c.op in ("+", "*"):
                    self.line(indent, f"{tgt} {c.op}= {val}")
                else:
                    fn = "np.minimum" if c.op == "min" else "np.maximum"
                    self.line(indent, f"{tgt} = {fn}({tgt}, {val})")
            else:  # op == "+", possibly repeated indices: scatter-add
                name = self.mangle(c.var)
                idx = ", ".join(self.pexpr(i, vec) for i in c.indices)
                self.line(indent, f"np.add.at({name}, ({idx},), {val})")
            return
        tgt = self._target(c)  # scalar target, reduce the whole lane
        if c.op == "+":
            self.line(indent, f"{tgt} += np.sum({val})")
        elif c.op == "*":
            self.line(indent, f"{tgt} *= np.prod({val})")
        elif c.op == "min":
            self.line(indent, f"{tgt} = min({tgt}, np.min({val}))")
        else:
            self.line(indent, f"{tgt} = max({tgt}, np.max({val}))")

    # -- entry ---------------------------------------------------------------
    def generate(self) -> Tuple[str, Dict[str, object]]:
        """Return (module_source, constants_table)."""
        self.lines = []
        args = [self.mangle(p) for p in self.interface]
        args += [self.mangle(p) for p in self.func.scalar_params]
        self.line(0, f"def kernel({', '.join(args)}):")
        body_start = len(self.lines)
        self.pstmt(self.func.body, 1)
        if len(self.lines) == body_start:
            self.line(1, "pass")
        src = _PRELUDE + "\n\n" + "\n".join(self.lines) + "\n"
        return src, self.consts


def _uses_var(stmt, name: str) -> bool:
    return any(_expr_uses_var(e, name) for e in stmt.child_exprs())


def _expr_uses_var(e: E.Expr, name: str) -> bool:
    if isinstance(e, E.Var) and e.name == name:
        return True
    return any(_expr_uses_var(c, name) for c in e.children())


def _is_unit_stride(ix: E.Expr, iv: str) -> bool:
    """Whether ``ix`` is ``iv`` plus/minus an iv-free offset (injective)."""
    if isinstance(ix, E.Var) and ix.name == iv:
        return True
    if isinstance(ix, E.Add):
        for a, b in ((ix.lhs, ix.rhs), (ix.rhs, ix.lhs)):
            if isinstance(a, E.Var) and a.name == iv \
                    and not _expr_uses_var(b, iv):
                return True
    if isinstance(ix, E.Sub):
        if isinstance(ix.lhs, E.Var) and ix.lhs.name == iv \
                and not _expr_uses_var(ix.rhs, iv):
            return True
    return False


def _independent_stmts(stmts) -> bool:
    """Whether statements touch pairwise-disjoint tensors (safe to split
    the loop into one vector statement per source statement)."""
    touched: List[Tuple[set, set]] = []
    for c in stmts:
        reads = set()

        def walk(e):
            if isinstance(e, E.Load):
                reads.add(e.var)
            for ch in e.children():
                walk(ch)

        walk(c.expr)
        for i in c.indices:
            walk(i)
        writes = {c.var}
        touched.append((reads, writes))
    for i, (r1, w1) in enumerate(touched):
        for r2, w2 in touched[i + 1:]:
            if w1 & (r2 | w2) or w2 & r1:
                return False
    return True


def loop_vectorizes(s: S.For) -> bool:
    """Whether the NumPy lowering turns loop ``s`` into whole-array
    kernels — the exact feasibility test ``_try_vectorize`` applies: a
    flat body of Store/ReduceTo statements over pairwise-disjoint
    tensors, each expressible as one vector statement. A ``vectorize``
    marking on any other loop shape falls back to a plain Python loop,
    so the cost model (``repro.analysis.cost``) consults this predicate
    through ``BackendCaps.vec_feasible`` before granting the
    whole-kernel discount."""
    body = s.body
    stmts = body.stmts if isinstance(body, S.StmtSeq) else [body]
    if not stmts or not all(
            isinstance(c, (S.Store, S.ReduceTo)) for c in stmts):
        return False
    if len(stmts) > 1 and not _independent_stmts(stmts):
        return False
    return all(PyCodegen._vec_feasible(c, s.iter_var) for c in stmts)


def compile_func(func: S.Func):
    """Compile a Func to a Python callable ``kernel(*buffers, *scalars)``."""
    gen = PyCodegen(func)
    src, consts = gen.generate()
    namespace: Dict[str, object] = {"_consts": consts}
    from ..runtime.libcalls import apply_libcall

    namespace["_libcall"] = (
        lambda kind, attrs, outs, args: apply_libcall(kind, attrs, outs, args))
    code = compile(src, f"<pycode {func.name}>", "exec")
    exec(code, namespace)
    kernel = namespace["kernel"]
    kernel.__ft_source__ = src
    return kernel

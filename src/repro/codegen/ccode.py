"""C/OpenMP backend: IR -> C99 source -> gcc -> ctypes-loaded native code.

This is the reproduction's CPU vendor-compiler path (the paper generates
OpenMP code and compiles it with gcc, section 4.3). Loops marked
``parallelize`` emit ``#pragma omp parallel for``, vectorized loops emit
``#pragma omp simd``, atomic reductions emit ``#pragma omp atomic``.
Integer ``//`` and ``%`` follow Python (floor) semantics via helpers.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from typing import Dict, List, Optional

import numpy as np

from ..errors import BackendError
from ..ir import (AccessType, DataType, Func, Load, MemType, Stmt, VarDef,
                  defined_tensors)
from ..ir import expr as E
from ..ir import stmt as S
from ..pipeline.legalize import legalize

# gcc only allows simd-safe constructs inside an ``omp simd`` region;
# the simd_suppress pass clears vectorize markings this backend could
# not honour (declared on the "c" Backend in repro.backend.builtin), so
# codegen below can emit the pragma unconditionally

_CTYPE = {
    DataType.FLOAT32: "float",
    DataType.FLOAT64: "double",
    DataType.INT32: "int32_t",
    DataType.INT64: "int64_t",
    DataType.BOOL: "uint8_t",
}

_PRELUDE = """\
#include <stdint.h>
#include <stdlib.h>
#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

static inline int64_t ft_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline int64_t ft_mod(int64_t a, int64_t b) {
    int64_t r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
static inline double ft_sigmoid(double x) { return 1.0/(1.0+exp(-x)); }
static inline float ft_sigmoidf(float x) { return 1.0f/(1.0f+expf(-x)); }

static void ft_matmul(double alpha_unused, const float* A, const float* B,
                      float* C, int64_t M, int64_t N, int64_t K,
                      int ta, int tb, int accumulate) {
    (void)alpha_unused;
    for (int64_t i = 0; i < M; i++) {
        for (int64_t j = 0; j < N; j++) {
            float acc = accumulate ? C[i*N + j] : 0.0f;
            for (int64_t k = 0; k < K; k++) {
                float a = ta ? A[k*M + i] : A[i*K + k];
                float b = tb ? B[j*K + k] : B[k*N + j];
                acc += a * b;
            }
            C[i*N + j] = acc;
        }
    }
}
"""

_INTRIN_C = {
    "abs": "fabs",
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "tanh": "tanh",
    "sigmoid": "ft_sigmoid",
    "floor": "floor",
    "ceil": "ceil",
    "erf": "erf",
}


class CCodegen:
    """Generates a C translation unit exporting ``void entry(void**)``."""

    def __init__(self, func: Func):
        self.func = func
        self.defs = defined_tensors(func.body)
        self.lines: List[str] = []
        self.names: Dict[str, str] = {}
        self.taken = set()
        self.scalar_vars = set()
        self.interface = func.interface_tensors()
        self.param_set = set(self.interface)
        self.consts: List = []  # (mangled name, ndarray)
        self._cse_map = {}
        self._cse_counter = 0
        #: scalar targets currently lowered via an OpenMP reduction
        #: clause (their ReduceTo statements skip the atomic pragma)
        self._reduction_vars = set()
        #: 0-D interface tensors temporarily aliased to a C local while
        #: inside a reduction-clause loop
        self._scalar_alias: Dict[str, str] = {}

    # -- names -----------------------------------------------------------
    def mangle(self, name: str) -> str:
        if name not in self.names:
            base = "v_" + "".join(c if c.isalnum() else "_" for c in name)
            out, i = base, 1
            while out in self.taken:
                out = f"{base}_{i}"
                i += 1
            self.taken.add(out)
            self.names[name] = out
        return self.names[name]

    # -- common-subexpression elimination (per statement) --------------------
    @staticmethod
    def _cse_worth(e: E.Expr) -> bool:
        """Hoisting pays off for transcendental calls and larger trees."""
        def has_call(x):
            if isinstance(x, (E.Intrinsic, E.RealDiv)):
                return True
            return any(has_call(c) for c in x.children())

        def ops(x):
            n = 0 if isinstance(x, (E.Const, E.Var, Load)) else 1
            return n + sum(ops(c) for c in x.children())

        return has_call(e) or ops(e) >= 4

    def _emit_cse(self, exprs, indent,
                  forbidden_reads=frozenset()) -> Dict[tuple, str]:
        """Emit temporaries for repeated subexpressions; returns the
        (block-local) substitution map installed in the printer.

        ``forbidden_reads``: tensors written inside the block — any
        subexpression loading one of them cannot be hoisted.
        """
        counts: Dict[tuple, int] = {}
        by_key: Dict[tuple, E.Expr] = {}

        def walk(e):
            k = e.key()
            counts[k] = counts.get(k, 0) + 1
            by_key.setdefault(k, e)
            for c in e.children():
                walk(c)

        for e in exprs:
            walk(e)
        cands = []

        def size(e):
            return 1 + sum(size(c) for c in e.children())

        def reads_forbidden(e):
            if isinstance(e, Load) and e.var in forbidden_reads:
                return True
            return any(reads_forbidden(c) for c in e.children())

        for k, e in by_key.items():
            if counts[k] >= 2 and not isinstance(e, (E.Const, E.Var,
                                                     Load)) \
                    and self._cse_worth(e) and not reads_forbidden(e):
                cands.append((size(e), k, e))
        cands.sort(key=lambda t: t[0])  # inner subtrees first
        installed = {}
        for _sz, k, e in cands:
            text = self.pexpr(e)  # uses previously-installed temps
            name = f"cse_{self._cse_counter}"
            self._cse_counter += 1
            self.line(indent, f"const {_CTYPE[e.dtype]} {name} = {text};")
            self._cse_map[k] = name
            installed[k] = name
        return installed

    def _clear_cse(self, installed: Dict[tuple, str]):
        for k in installed:
            self._cse_map.pop(k, None)

    def line(self, indent: int, text: str):
        self.lines.append("    " * indent + text)

    # -- expressions ---------------------------------------------------------
    def _strides(self, name: str) -> List[str]:
        """Row-major stride expressions (as C source) for a tensor."""
        vd = self.defs[name]
        dims = [self.pexpr(d) for d in vd.shape]
        out = []
        for i in range(len(dims)):
            if i == len(dims) - 1:
                out.append("1")
            else:
                out.append("*".join(f"({d})" for d in dims[i + 1:]))
        return out

    def _index(self, name: str, indices) -> str:
        if name in self.scalar_vars:
            return self.mangle(name)
        if not indices:
            alias = self._scalar_alias.get(name)
            if alias is not None:
                return alias
            return f"{self.mangle(name)}[0]"
        strides = self._strides(name)
        parts = [f"({self.pexpr(i)})*({s})" if s != "1"
                 else f"({self.pexpr(i)})"
                 for i, s in zip(indices, strides)]
        return f"{self.mangle(name)}[{' + '.join(parts)}]"

    def pexpr(self, e: E.Expr) -> str:
        p = self.pexpr
        if self._cse_map and not isinstance(e, (E.Const, E.Var)):
            hit = self._cse_map.get(e.key())
            if hit is not None:
                return hit
        if isinstance(e, E.IntConst):
            return f"{e.val}LL" if abs(e.val) > 2**31 else str(e.val)
        if isinstance(e, E.FloatConst):
            v = e.val
            if v != v:
                return "NAN"
            if v == float("inf"):
                return "INFINITY"
            if v == float("-inf"):
                return "-INFINITY"
            return repr(v)
        if isinstance(e, E.BoolConst):
            return "1" if e.val else "0"
        if isinstance(e, E.Var):
            return self.mangle(e.name)
        if isinstance(e, Load):
            return self._index(e.var, e.indices)
        if isinstance(e, E.Add):
            return f"({p(e.lhs)} + {p(e.rhs)})"
        if isinstance(e, E.Sub):
            return f"({p(e.lhs)} - {p(e.rhs)})"
        if isinstance(e, E.Mul):
            return f"({p(e.lhs)} * {p(e.rhs)})"
        if isinstance(e, E.RealDiv):
            ct = "float" if e.dtype is DataType.FLOAT32 else "double"
            return f"(({ct})({p(e.lhs)}) / ({ct})({p(e.rhs)}))"
        if isinstance(e, E.FloorDiv):
            return f"ft_floordiv({p(e.lhs)}, {p(e.rhs)})"
        if isinstance(e, E.Mod):
            return f"ft_mod({p(e.lhs)}, {p(e.rhs)})"
        if isinstance(e, E.Min):
            a, b = p(e.lhs), p(e.rhs)
            return f"(({a}) < ({b}) ? ({a}) : ({b}))"
        if isinstance(e, E.Max):
            a, b = p(e.lhs), p(e.rhs)
            return f"(({a}) > ({b}) ? ({a}) : ({b}))"
        if isinstance(e, E.CmpOp):
            return f"({p(e.lhs)} {e.op_name} {p(e.rhs)})"
        if isinstance(e, E.LAnd):
            return f"({p(e.lhs)} && {p(e.rhs)})"
        if isinstance(e, E.LOr):
            return f"({p(e.lhs)} || {p(e.rhs)})"
        if isinstance(e, E.LNot):
            return f"(!{p(e.operand)})"
        if isinstance(e, E.IfExpr):
            return (f"(({p(e.cond)}) ? ({p(e.then_case)}) : "
                    f"({p(e.else_case)}))")
        if isinstance(e, E.Cast):
            return f"(({_CTYPE[e.dtype]})({p(e.operand)}))"
        if isinstance(e, E.Intrinsic):
            f32 = (e.dtype is DataType.FLOAT32 and all(
                a.dtype is DataType.FLOAT32 for a in e.args))
            if e.name == "pow":
                fn = "powf" if f32 else "pow"
                return f"{fn}({p(e.args[0])}, {p(e.args[1])})"
            if e.name in ("unbound_min", "unbound_max"):
                op = "<" if e.name == "unbound_min" else ">"
                a, b = p(e.args[0]), p(e.args[1])
                return f"(({a}) {op} ({b}) ? ({a}) : ({b}))"
            fn = _INTRIN_C[e.name]
            if f32:  # single-precision math: ~2-4x faster on f32 data
                fn = "ft_sigmoidf" if fn == "ft_sigmoid" else fn + "f"
            return f"{fn}({p(e.args[0])})"
        raise BackendError(f"C backend cannot lower {type(e).__name__}")

    # -- statements -------------------------------------------------------------
    def pstmt(self, s: Stmt, indent: int):
        if isinstance(s, S.StmtSeq):
            self._gen_seq(s.stmts, indent)
            return
        if isinstance(s, VarDef):
            self._gen_vardef(s, indent)
            return
        if isinstance(s, S.For):
            self._gen_for(s, indent)
            return
        if isinstance(s, S.If):
            self.line(indent, f"if ({self.pexpr(s.cond)}) {{")
            self.pstmt(s.then_case, indent + 1)
            if s.else_case is not None:
                self.line(indent, "} else {")
                self.pstmt(s.else_case, indent + 1)
            self.line(indent, "}")
            return
        if isinstance(s, (S.Store, S.ReduceTo)):
            self.line(indent, "{")
            installed = self._emit_cse([s.expr, *s.indices], indent + 1)
            self._gen_store_like(s, indent + 1)
            self._clear_cse(installed)
            self.line(indent, "}")
            return
        if isinstance(s, S.Assert):
            self.pstmt(s.body, indent)
            return
        if isinstance(s, S.Eval):
            self.line(indent, f"(void)({self.pexpr(s.expr)});")
            return
        if isinstance(s, (S.Alloc, S.Free)):
            return
        if isinstance(s, S.LibCall):
            self._gen_libcall(s, indent)
            return
        raise BackendError(f"C backend cannot lower {type(s).__name__}")

    def _gen_store_like(self, s, indent: int):
        if isinstance(s, S.Store):
            self.line(indent,
                      f"{self._index(s.var, s.indices)} = "
                      f"{self.pexpr(s.expr)};")
            return
        tgt = self._index(s.var, s.indices)
        val = self.pexpr(s.expr)
        atomic = s.atomic and s.var not in self._reduction_vars
        if atomic and s.op in ("+", "*"):
            self.line(indent, "#pragma omp atomic")
        if s.op in ("+", "*"):
            self.line(indent, f"{tgt} {s.op}= {val};")
        else:
            op = "<" if s.op == "min" else ">"
            if atomic:
                self.line(indent, "#pragma omp critical")
                self.line(indent, "{")
                self.line(indent + 1,
                          f"if (({val}) {op} {tgt}) {tgt} = {val};")
                self.line(indent, "}")
            else:
                self.line(indent,
                          f"if (({val}) {op} {tgt}) {tgt} = {val};")

    def _gen_seq(self, stmts, indent: int):
        """Emit a statement list, hoisting subexpressions shared by runs
        of consecutive scalar stores (e.g. the adjoint groups AD emits)."""
        i = 0
        while i < len(stmts):
            s = stmts[i]
            if not isinstance(s, (S.Store, S.ReduceTo)):
                self.pstmt(s, indent)
                i += 1
                continue
            j = i
            while j < len(stmts) and isinstance(stmts[j],
                                                (S.Store, S.ReduceTo)):
                j += 1
            run = stmts[i:j]
            if len(run) == 1:
                self.pstmt(run[0], indent)
            else:
                written = {c.var for c in run}
                exprs = []
                for c in run:
                    exprs.append(c.expr)
                    exprs.extend(c.indices)
                self.line(indent, "{")
                installed = self._emit_cse(exprs, indent + 1,
                                           forbidden_reads=written)
                for c in run:
                    self._gen_store_like(c, indent + 1)
                self._clear_cse(installed)
                self.line(indent, "}")
            i = j

    def _gen_vardef(self, s: VarDef, indent: int):
        if s.name in self.param_set:
            self.pstmt(s.body, indent)
            return
        name = self.mangle(s.name)
        ct = _CTYPE[s.dtype]
        if s.ndim == 0 and s.init_data is None:
            self.scalar_vars.add(s.name)
            self.line(indent, f"{ct} {name} = 0;")
            self.pstmt(s.body, indent)
            return
        size = " * ".join(f"(size_t)({self.pexpr(d)})"
                          for d in s.shape) or "1"
        self.line(indent, f"{ct}* {name} = ({ct}*)malloc("
                          f"({size}) * sizeof({ct}));")
        if s.init_data is not None:
            cname = f"c_{len(self.consts)}"
            self.consts.append((cname, np.ascontiguousarray(
                s.init_data, dtype=s.dtype.to_numpy())))
            self.line(indent, f"for (size_t q_ = 0; q_ < ({size}); q_++) "
                              f"{name}[q_] = {cname}[q_];")
        self.pstmt(s.body, indent)
        self.line(indent, f"free({name});")

    _OMP_RED_OP = {"+": "+", "*": "*", "min": "min", "max": "max"}

    def _scalar_reductions(self, loop: S.For):
        """Scalar reduction targets lowered with an OpenMP ``reduction``
        clause instead of per-iteration atomics (paper Fig. 13(d)).

        Eligible targets are 0-D tensors defined outside the loop: plain
        C locals directly, interface scalars through a local alias."""
        from ..ir import collect_stmts

        ops = {}
        ok = set()
        for r in collect_stmts(loop.body,
                               lambda x: isinstance(x, S.ReduceTo)):
            is_scalar = (r.var in self.scalar_vars or
                         (not r.indices and r.var in self.defs and
                          self.defs[r.var].ndim == 0))
            if not is_scalar:
                continue
            prev = ops.get(r.var)
            if prev is None:
                ops[r.var] = r.op
                ok.add(r.var)
            elif prev != r.op:
                ok.discard(r.var)  # mixed operators: keep atomics
        # a target also written by a plain Store inside the loop cannot
        # use a reduction clause
        for w in collect_stmts(loop.body,
                               lambda x: isinstance(x, S.Store)):
            ok.discard(w.var)
        return {v: ops[v] for v in ok}

    def _gen_for(self, s: S.For, indent: int):
        it = self.mangle(s.iter_var)
        released = set()
        aliases = []  # (tensor name, local alias)
        if s.property.parallel:  # CUDA kinds degrade to OpenMP on CPU
            pragma = "#pragma omp parallel for"
            reds = self._scalar_reductions(s)
            for var, op in sorted(reds.items()):
                if var in self._reduction_vars:
                    continue
                if var in self.scalar_vars:
                    cname = self.mangle(var)
                else:
                    # interface 0-D tensor: reduce through a local alias
                    cname = f"red_{self.mangle(var)}"
                    ct = _CTYPE[self.defs[var].dtype]
                    self.line(indent,
                              f"{ct} {cname} = {self.mangle(var)}[0];")
                    aliases.append((var, cname))
                    self._scalar_alias[var] = cname
                pragma += f" reduction({self._OMP_RED_OP[op]}:{cname})"
                self._reduction_vars.add(var)
                released.add(var)
            self.line(indent, pragma)
        elif s.property.vectorize:
            # vectorize markings gcc cannot honour were cleared by the
            # simd_suppress legalization pass (repro.pipeline.legalize)
            self.line(indent, "#pragma omp simd")
        elif s.property.unroll:
            self.line(indent, "#pragma GCC unroll 8")
        self.line(indent,
                  f"for (int64_t {it} = {self.pexpr(s.begin)}; "
                  f"{it} < {self.pexpr(s.end)}; {it}++) {{")
        self.pstmt(s.body, indent + 1)
        self.line(indent, "}")
        self._reduction_vars -= released
        for var, cname in aliases:
            del self._scalar_alias[var]
            self.line(indent, f"{self.mangle(var)}[0] = {cname};")

    def _gen_libcall(self, s: S.LibCall, indent: int):
        if s.kind == "matmul":
            c, (a, b) = s.outs[0], s.args
            cd = self.defs[c]
            m = self.pexpr(cd.shape[0])
            n = self.pexpr(cd.shape[1])
            ad = self.defs[a]
            ta = 1 if s.attrs.get("trans_a") else 0
            k = self.pexpr(ad.shape[0] if ta else ad.shape[1])
            acc = 1 if s.attrs.get("accumulate") else 0
            tb = 1 if s.attrs.get("trans_b") else 0
            self.line(indent,
                      f"ft_matmul(0.0, {self.mangle(a)}, {self.mangle(b)},"
                      f" {self.mangle(c)}, {m}, {n}, {k}, {ta}, {tb},"
                      f" {acc});")
            return
        if s.kind == "fill":
            out = s.outs[0]
            size = " * ".join(f"(size_t)({self.pexpr(d)})"
                              for d in self.defs[out].shape) or "1"
            self.line(indent,
                      f"for (size_t q_ = 0; q_ < ({size}); q_++) "
                      f"{self.mangle(out)}[q_] = {s.attrs['value']};")
            return
        if s.kind == "copy":
            out, src = s.outs[0], s.args[0]
            size = " * ".join(f"(size_t)({self.pexpr(d)})"
                              for d in self.defs[out].shape) or "1"
            self.line(indent,
                      f"for (size_t q_ = 0; q_ < ({size}); q_++) "
                      f"{self.mangle(out)}[q_] = {self.mangle(src)}[q_];")
            return
        raise BackendError(f"C backend: unknown library call {s.kind!r}")

    # -- entry ------------------------------------------------------------------
    def generate(self) -> str:
        self.lines = []
        args = []
        for p in self.interface:
            ct = _CTYPE[self.defs[p].dtype]
            args.append(f"{ct}* {self.mangle(p)}")
        for p in self.func.scalar_params:
            args.append(f"int64_t {self.mangle(p)}")
        self.line(0, f"void kernel({', '.join(args)}) {{")
        self.pstmt(self.func.body, 1)
        self.line(0, "}")
        const_decls = []
        for cname, arr in self.consts:
            ct = _CTYPE[DataType.parse(str(arr.dtype))] \
                if str(arr.dtype) in ("float32", "float64", "int32",
                                      "int64") else "float"
            flat = ", ".join(repr(x) for x in arr.ravel().tolist())
            const_decls.append(
                f"static const {ct} {cname}[] = {{{flat}}};")
        return _PRELUDE + "\n" + "\n".join(const_decls) + "\n\n" + \
            "\n".join(self.lines) + "\n"


_CACHE_DIR = None


def _cache_dir() -> str:
    """Native artifact directory.

    With the persistent cache on (the default) this is the shared
    ``<cache root>/native`` store, so kernels survive the process and are
    shared machine-wide. When ``REPRO_NO_DISK_CACHE=1`` it falls back to
    a per-process temp directory that is removed at interpreter exit —
    the old behaviour minus the old leak (nothing ever deleted it).
    """
    global _CACHE_DIR
    if _CACHE_DIR is None:
        from ..cache import store as disk_store

        shared = disk_store.get_store()
        if shared is not None:
            _CACHE_DIR = shared.native_dir()
            os.makedirs(_CACHE_DIR, exist_ok=True)
        else:
            import atexit
            import shutil

            _CACHE_DIR = tempfile.mkdtemp(prefix="repro_cc_")
            atexit.register(shutil.rmtree, _CACHE_DIR,
                            ignore_errors=True)
    return _CACHE_DIR


def _invalidate_cache_dir():
    """Re-resolve the native directory (tests re-point REPRO_CACHE_DIR)."""
    global _CACHE_DIR
    _CACHE_DIR = None


def compile_func_native(func: Func, cc: str = "gcc", openmp: bool = True,
                        opt: str = "-O3 -march=native -fno-math-errno",
                        **_opts):
    """Compile a Func with the host C compiler; returns ``run(env)``.

    Artifacts are content-addressed by the full gcc input — generated
    source, compiler identity (``cc --version``) and flags — so any
    process that ever compiled this translation unit on this machine
    already paid for the ``.so`` everyone else loads. Concurrent builders
    of one key serialize on a per-key lock file, and the winner publishes
    with an atomic rename so readers never observe a half-written object.
    """
    from ..cache.keys import native_digest
    from ..runtime import metrics

    # idempotent when the build pipeline already legalized; keeps direct
    # compile_func_native() callers correct
    func = legalize(func, "c")
    gen = CCodegen(func)
    src = gen.generate()
    digest = native_digest(src, cc, opt, openmp)
    cdir = _cache_dir()
    c_path = os.path.join(cdir, f"k{digest}.c")
    so_path = os.path.join(cdir, f"k{digest}.so")
    if not os.path.exists(so_path):
        _build_native(src, cc, opt, openmp, cdir, digest, c_path, so_path)
    else:
        metrics.record_native(True)
        try:  # LRU recency for the shared store's GC
            os.utime(so_path)
        except OSError:
            pass
    lib = ctypes.CDLL(so_path)
    kernel = lib.kernel
    interface = func.interface_tensors()
    defs = defined_tensors(func.body)
    arg_types = []
    for p in interface:
        np_dt = defs[p].dtype.to_numpy()
        arg_types.append(np.ctypeslib.ndpointer(dtype=np_dt,
                                                flags="C_CONTIGUOUS"))
    arg_types += [ctypes.c_int64] * len(func.scalar_params)
    kernel.argtypes = arg_types
    kernel.restype = None

    def run(env):
        args = [np.ascontiguousarray(env[p]) for p in interface]
        args += [int(env[p]) for p in func.scalar_params]
        kernel(*args)
        # write back: ascontiguousarray may have copied
        for p, arr in zip(interface, args[:len(interface)]):
            if arr is not env[p]:
                env[p][...] = arr

    run.__ft_source__ = src
    return run


def _build_native(src: str, cc: str, opt: str, openmp: bool, cdir: str,
                  digest: str, c_path: str, so_path: str):
    """Compile ``src`` and publish ``so_path`` atomically (one winner per
    key across processes)."""
    import time as _time

    from ..runtime import metrics

    metrics.record_native(False)
    lock_path = os.path.join(cdir, f"k{digest}.lock")
    lock = open(lock_path, "w")
    # gcc dispatches on the suffix, so the temp names keep .c / .so and
    # embed the pid before it (unique per concurrent builder)
    tmp_c = os.path.join(cdir, f"k{digest}.{os.getpid()}.tmp.c")
    tmp_so = os.path.join(cdir, f"k{digest}.{os.getpid()}.tmp.so")
    try:
        try:
            import fcntl

            fcntl.flock(lock, fcntl.LOCK_EX)
        except ImportError:  # pragma: no cover - non-posix
            pass
        if os.path.exists(so_path):  # raced: another process built it
            return
        t0 = _time.perf_counter()
        with open(tmp_c, "w") as f:
            f.write(src)
        cmd = [cc, *opt.split(), "-shared", "-fPIC", "-o", tmp_so,
               tmp_c, "-lm"]
        if openmp:
            cmd.insert(2, "-fopenmp")
        try:
            subprocess.run(cmd, check=True, capture_output=True, text=True)
        except FileNotFoundError:
            raise BackendError(f"C compiler {cc!r} not found") from None
        except subprocess.CalledProcessError as exc:
            raise BackendError(
                f"gcc failed:\n{exc.stderr}\n--- source ---\n{src}"
            ) from None
        metrics.record_gcc_run(_time.perf_counter() - t0)
        # keep the source beside the object (debugging aid), then publish
        os.replace(tmp_c, c_path)
        os.replace(tmp_so, so_path)
    finally:
        for tmp in (tmp_c, tmp_so):
            try:
                os.unlink(tmp)
            except OSError:
                pass
        lock.close()

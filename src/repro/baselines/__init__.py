"""Baseline frameworks the evaluation compares against (see DESIGN.md)."""

from .optensor import (Device, OpTensor, abs_, add, bmm, cat, div, exp,
                       flatten, get_default_device, index_select,
                       leaky_relu, log, matmul, max_, maximum, mean, mul,
                       narrow, neg, pad, prod, relu, reshape, scatter_add,
                       scatter_max, sigmoid, sliding_window, softmax,
                       stack, sub, sum_, tanh, tensor, transpose, where)
from .vmap import vmap

__all__ = [
    "Device", "OpTensor", "abs_", "add", "bmm", "cat", "div", "exp",
    "flatten", "get_default_device", "index_select", "leaky_relu", "log",
    "matmul", "max_", "maximum", "mean", "mul", "narrow", "neg", "pad",
    "prod", "relu", "reshape", "scatter_add", "scatter_max", "sigmoid",
    "sliding_window", "softmax", "stack", "sub", "sum_", "tensor",
    "transpose", "vmap", "where",
]

"""A ``vmap`` combinator for the OpTensor baseline.

JAX/PyTorch ``vmap`` lets the SoftRas baseline express per-face
computation that is then executed as whole-batch kernels (paper section
6.2: "this application can be accelerated by expressing the computation
for individual faces and looping over multiple faces via the vmap
meta-operator"). On the OpTensor substrate the same effect comes from
broadcasting: ``vmap(fn)`` feeds the *batched* tensors through ``fn``
whose elementwise operators broadcast over the leading axis — one kernel
per op for the whole batch, exactly like a vmapped program.
"""

from __future__ import annotations

from typing import Callable

from .optensor import OpTensor


def vmap(fn: Callable) -> Callable:
    """Vectorise ``fn`` over the leading axis of its OpTensor arguments.

    ``fn`` must be written with broadcasting-compatible operators (all of
    ``repro.baselines.optensor`` qualifies). Non-tensor arguments pass
    through unchanged.
    """

    def batched(*args, **kwargs):
        return fn(*args, **kwargs)

    batched.__name__ = f"vmap({getattr(fn, '__name__', 'fn')})"
    batched.__vmapped__ = True
    return batched

"""OpTensor: an eager, operator-based tensor framework (baseline).

This is the reproduction's PyTorch/JAX stand-in (see DESIGN.md). It has the
architectural properties the paper attributes to operator-based
frameworks — the properties that cost them performance on irregular
programs:

- every operator is a separate whole-tensor kernel (one launch each);
- every operator output is a **materialised full tensor** that travels
  through memory (no fusion, no registers across ops);
- expressing partial/indirect access requires data-rearranging operators
  (``index_select`` / ``pad`` / ``sliding_window`` / ``cat``) that move
  data without computing anything;
- reverse-mode autograd is graph-based: it retains every saved operand
  until backward, so differentiation multiplies the memory footprint.

Kernels execute on NumPy (the same substrate as the FreeTensor-side
backends), and every operator reports launches, bytes moved, FLOPs and
footprint to a :class:`Device`, so the baseline and FreeTensor are
measured identically (Figure 17) and the simulated-GPU capacity applies to
both (Figures 16(b)/18).
"""

from __future__ import annotations

import weakref
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulatedOOM


class Device:
    """An execution device: metrics plus an optional capacity limit."""

    def __init__(self, name: str = "cpu",
                 capacity_bytes: Optional[int] = None,
                 launch_overhead_s: float = 0.0):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.launch_overhead_s = launch_overhead_s
        self.reset()

    def reset(self):
        self.kernels = 0
        self.kernel_names: List[str] = []
        self.bytes_read = 0
        self.bytes_written = 0
        self.flops = 0
        self.current_bytes = 0
        self.peak_bytes = 0

    # -- accounting -------------------------------------------------------
    def on_kernel(self, name: str, reads: int, writes: int, flops: int):
        self.kernels += 1
        self.kernel_names.append(name)
        self.bytes_read += reads
        self.bytes_written += writes
        self.flops += flops

    def on_alloc(self, nbytes: int):
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        if self.capacity_bytes is not None and \
                self.current_bytes > self.capacity_bytes:
            raise SimulatedOOM(
                f"{self.name}: out of memory "
                f"({self.current_bytes / 2**30:.2f} GiB > "
                f"{self.capacity_bytes / 2**30:.2f} GiB)",
                requested=self.current_bytes,
                capacity=self.capacity_bytes)

    def on_free(self, nbytes: int):
        self.current_bytes -= nbytes

    @property
    def dram_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def as_dict(self):
        return {
            "kernels": self.kernels,
            "dram_bytes": self.dram_bytes,
            "flops": self.flops,
            "peak_bytes": self.peak_bytes,
        }


_default_device = Device("cpu")


def get_default_device() -> Device:
    return _default_device


class _Node:
    """A node of the autograd graph."""

    __slots__ = ("inputs", "backward_fn", "name")

    def __init__(self, name: str, inputs: Sequence["OpTensor"],
                 backward_fn: Callable):
        self.name = name
        self.inputs = list(inputs)
        self.backward_fn = backward_fn


class OpTensor:
    """An eagerly-evaluated tensor with operator-level autograd."""

    def __init__(self, data: np.ndarray, device: Optional[Device] = None,
                 requires_grad: bool = False, _node: Optional[_Node] = None,
                 _counts_alloc: bool = True):
        self.data = np.asarray(data)
        self.device = device if device is not None else _default_device
        self.requires_grad = requires_grad
        self.node = _node
        self.grad: Optional[np.ndarray] = None
        if _counts_alloc:
            self.device.on_alloc(self.data.nbytes)
            weakref.finalize(self, self.device.on_free, self.data.nbytes)

    # -- metadata -----------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"OpTensor(shape={self.shape}, dtype={self.dtype})"

    # -- operator sugar -------------------------------------------------------
    def __add__(self, other):
        return add(self, other)

    def __radd__(self, other):
        return add(other, self)

    def __sub__(self, other):
        return sub(self, other)

    def __rsub__(self, other):
        return sub(other, self)

    def __mul__(self, other):
        return mul(self, other)

    def __rmul__(self, other):
        return mul(other, self)

    def __truediv__(self, other):
        return div(self, other)

    def __rtruediv__(self, other):
        return div(other, self)

    def __neg__(self):
        return neg(self)

    def __matmul__(self, other):
        return matmul(self, other)

    # -- autograd entry ------------------------------------------------------
    def backward(self, out_grad: Optional[np.ndarray] = None):
        """Reverse-mode over the recorded graph (baseline AD).

        Materialises a gradient kernel per recorded op; the graph retained
        every operand, mirroring operator-framework memory behaviour.
        """
        if out_grad is None:
            out_grad = np.ones_like(self.data)
        grads = {id(self): np.asarray(out_grad, dtype=self.data.dtype)}
        order: List[OpTensor] = []
        seen = set()

        def topo(t: "OpTensor"):
            if id(t) in seen or t.node is None:
                return
            seen.add(id(t))
            for x in t.node.inputs:
                topo(x)
            order.append(t)

        topo(self)
        leaves = {}
        for t in reversed(order):
            g = grads.pop(id(t), None)
            if g is None:
                continue
            in_grads = t.node.backward_fn(g)
            _kernel_accounting(t.device, t.node.name + ".bwd",
                               [g], in_grads)
            for x, gx in zip(t.node.inputs, in_grads):
                if gx is None or not isinstance(x, OpTensor):
                    continue
                if not (x.requires_grad or x.node is not None):
                    continue
                prev = grads.get(id(x))
                grads[id(x)] = gx if prev is None else prev + gx
                if x.node is None and x.requires_grad:
                    leaves[id(x)] = x
        for lid, x in leaves.items():
            g = grads.get(lid)
            if g is not None:
                x.grad = g if x.grad is None else x.grad + g


def _kernel_accounting(device: Device, name: str, reads, writes):
    r = sum(int(np.asarray(x).nbytes) for x in reads
            if x is not None)
    w = sum(int(np.asarray(x).nbytes) for x in writes
            if x is not None)
    device.on_kernel(name, r, w, 0)


# ---------------------------------------------------------------------------
# operator implementation machinery
# ---------------------------------------------------------------------------


def tensor(data, device: Optional[Device] = None,
           requires_grad: bool = False, dtype=np.float32) -> OpTensor:
    """Create a leaf tensor on a device."""
    return OpTensor(np.asarray(data, dtype=dtype), device,
                    requires_grad)


def _wrap(x, like: OpTensor) -> OpTensor:
    if isinstance(x, OpTensor):
        return x
    return OpTensor(np.asarray(x, dtype=like.data.dtype), like.device,
                    _counts_alloc=False)


def _op(name: str, inputs: Sequence[OpTensor], out_data: np.ndarray,
        backward_fn: Optional[Callable], flops: int = 0,
        is_view: bool = False) -> OpTensor:
    """Record one operator execution: metrics + graph node."""
    device = inputs[0].device if inputs else _default_device
    reads = sum(t.data.nbytes for t in inputs)
    writes = 0 if is_view else out_data.nbytes
    device.on_kernel(name, reads, writes, flops)
    track = any(t.requires_grad or t.node is not None for t in inputs)
    node = _Node(name, inputs, backward_fn) if track and \
        backward_fn is not None else None
    return OpTensor(out_data, device, requires_grad=False, _node=node,
                    _counts_alloc=not is_view)


def _unbroadcast(g: np.ndarray, shape) -> np.ndarray:
    """Reduce a broadcast gradient back to an operand's shape."""
    if g.shape == tuple(shape):
        return g
    extra = g.ndim - len(shape)
    if extra > 0:
        g = g.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (gs, s) in enumerate(zip(g.shape, shape))
                 if s == 1 and gs != 1)
    if axes:
        g = g.sum(axis=axes, keepdims=True)
    return g.reshape(shape)


# ---------------------------------------------------------------------------
# elementwise operators
# ---------------------------------------------------------------------------


def add(a, b) -> OpTensor:
    a0 = a if isinstance(a, OpTensor) else None
    b0 = b if isinstance(b, OpTensor) else None
    ref = a0 or b0
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = a.data + b.data
    return _op("add", [a, b], out,
               lambda g: (_unbroadcast(g, a.shape),
                          _unbroadcast(g, b.shape)),
               flops=out.size)


def sub(a, b) -> OpTensor:
    ref = a if isinstance(a, OpTensor) else b
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = a.data - b.data
    return _op("sub", [a, b], out,
               lambda g: (_unbroadcast(g, a.shape),
                          _unbroadcast(-g, b.shape)),
               flops=out.size)


def mul(a, b) -> OpTensor:
    ref = a if isinstance(a, OpTensor) else b
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = a.data * b.data
    return _op("mul", [a, b], out,
               lambda g: (_unbroadcast(g * b.data, a.shape),
                          _unbroadcast(g * a.data, b.shape)),
               flops=out.size)


def div(a, b) -> OpTensor:
    ref = a if isinstance(a, OpTensor) else b
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = a.data / b.data
    return _op("div", [a, b], out,
               lambda g: (_unbroadcast(g / b.data, a.shape),
                          _unbroadcast(-g * a.data / (b.data * b.data),
                                       b.shape)),
               flops=out.size)


def neg(a: OpTensor) -> OpTensor:
    return _op("neg", [a], -a.data, lambda g: (-g,), flops=a.data.size)


def abs_(a: OpTensor) -> OpTensor:
    return _op("abs", [a], np.abs(a.data),
               lambda g: (g * np.sign(a.data),), flops=a.data.size)


def exp(a: OpTensor) -> OpTensor:
    out = np.exp(a.data)
    return _op("exp", [a], out, lambda g: (g * out,),
               flops=a.data.size)


def log(a: OpTensor) -> OpTensor:
    return _op("log", [a], np.log(a.data), lambda g: (g / a.data,),
               flops=a.data.size)


def sigmoid(a: OpTensor) -> OpTensor:
    out = 1.0 / (1.0 + np.exp(-a.data))
    return _op("sigmoid", [a], out,
               lambda g: (g * out * (1 - out),), flops=3 * a.data.size)


def tanh(a: OpTensor) -> OpTensor:
    out = np.tanh(a.data)
    return _op("tanh", [a], out, lambda g: (g * (1 - out * out),),
               flops=a.data.size)


def relu(a: OpTensor) -> OpTensor:
    out = np.maximum(a.data, 0)
    return _op("relu", [a], out,
               lambda g: (g * (a.data > 0),), flops=a.data.size)


def leaky_relu(a: OpTensor, slope: float = 0.2) -> OpTensor:
    out = np.where(a.data > 0, a.data, slope * a.data)
    return _op("leaky_relu", [a], out,
               lambda g: (g * np.where(a.data > 0, 1.0, slope)
                          .astype(a.data.dtype),),
               flops=a.data.size)


def maximum(a, b) -> OpTensor:
    ref = a if isinstance(a, OpTensor) else b
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = np.maximum(a.data, b.data)
    mask = (a.data >= b.data)
    return _op("maximum", [a, b], out,
               lambda g: (_unbroadcast(g * mask, a.shape),
                          _unbroadcast(g * ~mask, b.shape)),
               flops=out.size)


def where(cond: OpTensor, a, b) -> OpTensor:
    ref = a if isinstance(a, OpTensor) else b
    a, b = _wrap(a, ref), _wrap(b, ref)
    out = np.where(cond.data, a.data, b.data)
    return _op("where", [cond, a, b], out,
               lambda g: (None,
                          _unbroadcast(g * cond.data, a.shape),
                          _unbroadcast(g * ~np.asarray(cond.data, bool),
                                       b.shape)),
               flops=out.size)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def sum_(a: OpTensor, axis=None, keepdims: bool = False) -> OpTensor:
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def bwd(g):
        gg = np.asarray(g)
        if axis is not None and not keepdims:
            gg = np.expand_dims(gg, axis)
        return (np.broadcast_to(gg, a.shape).astype(a.data.dtype),)

    return _op("sum", [a], np.asarray(out), bwd, flops=a.data.size)


def mean(a: OpTensor, axis=None, keepdims: bool = False) -> OpTensor:
    n = a.data.size if axis is None else a.data.shape[axis]
    out = a.data.mean(axis=axis, keepdims=keepdims)

    def bwd(g):
        gg = np.asarray(g) / n
        if axis is not None and not keepdims:
            gg = np.expand_dims(gg, axis)
        return (np.broadcast_to(gg, a.shape).astype(a.data.dtype),)

    return _op("mean", [a], np.asarray(out), bwd, flops=a.data.size)


def max_(a: OpTensor, axis=None, keepdims: bool = False) -> OpTensor:
    out = a.data.max(axis=axis, keepdims=keepdims)

    def bwd(g):
        full = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == full)
        gg = np.asarray(g)
        if axis is not None and not keepdims:
            gg = np.expand_dims(gg, axis)
        return ((mask * gg).astype(a.data.dtype),)

    return _op("max", [a], np.asarray(out), bwd, flops=a.data.size)


def prod(a: OpTensor, axis=None, keepdims: bool = False) -> OpTensor:
    out = a.data.prod(axis=axis, keepdims=keepdims)

    def bwd(g):
        full = a.data.prod(axis=axis, keepdims=True)
        gg = np.asarray(g)
        if axis is not None and not keepdims:
            gg = np.expand_dims(gg, axis)
        with np.errstate(divide="ignore", invalid="ignore"):
            gx = np.where(a.data != 0, full / a.data, 0.0)
        return ((gx * gg).astype(a.data.dtype),)

    return _op("prod", [a], np.asarray(out), bwd, flops=a.data.size)


def softmax(a: OpTensor, axis: int = -1) -> OpTensor:
    """One fused kernel, as vendor libraries provide."""
    e = np.exp(a.data - a.data.max(axis=axis, keepdims=True))
    out = e / e.sum(axis=axis, keepdims=True)

    def bwd(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return ((out * (g - dot)).astype(a.data.dtype),)

    return _op("softmax", [a], out, bwd, flops=5 * a.data.size)


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------


def matmul(a: OpTensor, b: OpTensor) -> OpTensor:
    out = a.data @ b.data
    k = a.data.shape[-1]

    def bwd(g):
        ga = g @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ g
        return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

    return _op("matmul", [a, b], out, bwd, flops=2 * out.size * k)


bmm = matmul  # batched matmul is the same NumPy kernel


# ---------------------------------------------------------------------------
# data movement (the redundancy-introducing operators of Fig. 1/2)
# ---------------------------------------------------------------------------


def index_select(a: OpTensor, axis: int, idx: OpTensor) -> OpTensor:
    """Gather rows along an axis (PyTorch ``index_select``)."""
    ii = np.asarray(idx.data if isinstance(idx, OpTensor) else idx,
                    dtype=np.int64)
    out = np.take(a.data, ii, axis=axis)

    def bwd(g):
        ga = np.zeros_like(a.data)
        np.add.at(ga, _axis_index(axis, ii, a.data.ndim), g)
        return (ga, None) if isinstance(idx, OpTensor) else (ga,)

    ins = [a, idx] if isinstance(idx, OpTensor) else [a]
    return _op("index_select", ins, out, bwd)


def _axis_index(axis, ii, ndim):
    sl = [slice(None)] * ndim
    sl[axis] = ii
    return tuple(sl)


def scatter_add(a: OpTensor, axis: int, idx, src: OpTensor) -> OpTensor:
    """Out-of-place ``index_add`` (one kernel, fresh output)."""
    ii = np.asarray(idx.data if isinstance(idx, OpTensor) else idx,
                    dtype=np.int64)
    out = a.data.copy()
    np.add.at(out, _axis_index(axis, ii, out.ndim), src.data)

    def bwd(g):
        gsrc = np.take(g, ii, axis=axis)
        outs = [g, gsrc]
        if isinstance(idx, OpTensor):
            outs.insert(1, None)
        return tuple(outs)

    ins = [a, idx, src] if isinstance(idx, OpTensor) else [a, src]
    return _op("scatter_add", ins, out, bwd)


def reshape(a: OpTensor, shape) -> OpTensor:
    out = a.data.reshape(shape)
    return _op("reshape", [a], out,
               lambda g: (np.asarray(g).reshape(a.shape),),
               is_view=True)


def flatten(a: OpTensor) -> OpTensor:
    return reshape(a, (-1,))


def transpose(a: OpTensor, axes=None) -> OpTensor:
    out = np.transpose(a.data, axes)

    def bwd(g):
        inv = None if axes is None else np.argsort(axes)
        return (np.transpose(np.asarray(g), inv),)

    return _op("transpose", [a], out, bwd, is_view=True)


def cat(tensors: Sequence[OpTensor], axis: int = 0) -> OpTensor:
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def bwd(g):
        return tuple(np.split(np.asarray(g),
                              np.cumsum(sizes)[:-1], axis=axis))

    return _op("cat", list(tensors), out, bwd)


def pad(a: OpTensor, pad_width, value: float = 0.0) -> OpTensor:
    out = np.pad(a.data, pad_width, constant_values=value)

    def bwd(g):
        sl = tuple(slice(p[0], g.shape[i] - p[1])
                   for i, p in enumerate(pad_width))
        return (np.asarray(g)[sl],)

    return _op("pad", [a], out, bwd)


def sliding_window(a: OpTensor, window: int, axis: int = 0) -> OpTensor:
    """Materialise ``window``-sized sliding views along an axis.

    This is the PyTorch ``pad + as_strided + contiguous`` idiom of the
    Longformer implementation in paper Fig. 1(c): the result is
    window-fold larger than the input — the memory redundancy FreeTensor
    avoids.
    """
    assert axis == 0, "only axis 0 is needed by the workloads"
    n = a.data.shape[0] - window + 1
    view = np.lib.stride_tricks.sliding_window_view(a.data, window, axis=0)
    # (n, rest..., window) -> (n, window, rest...)
    view = np.moveaxis(view, -1, 1)
    out = np.ascontiguousarray(view)

    def bwd(g):
        ga = np.zeros_like(a.data)
        gg = np.asarray(g)
        for kk in range(window):
            ga[kk:kk + n] += gg[:, kk]
        return (ga,)

    return _op("sliding_window", [a], out, bwd)


def narrow(a: OpTensor, axis: int, start: int, length: int) -> OpTensor:
    """A contiguous slice along an axis (a view, like torch.narrow)."""
    sl = [slice(None)] * a.data.ndim
    sl[axis] = slice(start, start + length)
    out = a.data[tuple(sl)]

    def bwd(g):
        ga = np.zeros_like(a.data)
        ga[tuple(sl)] = g
        return (ga,)

    return _op("narrow", [a], out, bwd, is_view=True)


def scatter_max(a: OpTensor, axis: int, idx, src: OpTensor) -> OpTensor:
    """Out-of-place segment max (no gradient; used by inference-only
    message passing)."""
    ii = np.asarray(idx.data if isinstance(idx, OpTensor) else idx,
                    dtype=np.int64)
    out = a.data.copy()
    np.maximum.at(out, _axis_index(axis, ii, out.ndim), src.data)
    ins = [a, idx, src] if isinstance(idx, OpTensor) else [a, src]
    return _op("scatter_max", ins, out, None)


def stack(tensors: Sequence[OpTensor], axis: int = 0) -> OpTensor:
    out = np.stack([t.data for t in tensors], axis=axis)

    def bwd(g):
        return tuple(np.moveaxis(np.asarray(g), axis, 0))

    return _op("stack", list(tensors), out, bwd)

"""The free-form DSL frontend: staging Python functions into IR."""

from .context import Builder
from .staging import (Program, ParamSpec, capture, create_var, cur_ctx,
                      empty, in_staging, inline, label, ones, transform,
                      zeros)
from .tensor import (Size, Tensor, TensorRef, as_expr, ceil, cos, erf, exp,
                     floor, ft_abs, ft_max, ft_min, log, sigmoid, sin, sqrt,
                     tan, tanh)

__all__ = [
    "Builder", "Program", "ParamSpec", "capture", "create_var", "cur_ctx",
    "empty", "in_staging", "inline", "label", "ones", "transform", "zeros",
    "Size", "Tensor", "TensorRef", "as_expr", "ceil", "cos", "erf", "exp",
    "floor", "ft_abs", "ft_max", "ft_min", "log", "sigmoid", "sin", "sqrt",
    "tan", "tanh",
]

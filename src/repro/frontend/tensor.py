"""Tensor proxies used while staging DSL functions.

A :class:`TensorRef` stands for (a view of) an IR tensor. Indexing follows
NumPy-style rules (paper Figure 4): integer indices drop dimensions, slices
keep them, and any sub-area of a tensor can be referenced. Arithmetic on
0-D refs produces scalar IR expressions; arithmetic on N-D refs emits
fine-grained elementwise loops producing a fresh temporary — these are the
paper's *granularity-oblivious* tensor operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..errors import StagingError
from ..ir import (DataType, Expr, IntConst, Load, ReduceTo, Store, join_dtype,
                  makeIntrinsic, makeMax, makeMin, same_expr, wrap, wrap_like)
from .context import Builder, _VarMarker

# A view dimension is either ("idx", expr) — consumed by an integer index —
# or ("range", start_expr, length_expr) — still iterable.
_Dim = Tuple


class TensorRef:
    """A (view of a) tensor during staging."""

    __slots__ = ("ctx", "name", "dtype", "dims", "marker")

    def __init__(self,
                 ctx: Builder,
                 name: str,
                 dtype: DataType,
                 dims: Sequence[_Dim],
                 marker: Optional[_VarMarker] = None):
        self.ctx = ctx
        self.name = name
        self.dtype = dtype
        self.dims = list(dims)
        self.marker = marker

    # -- construction -----------------------------------------------------
    @staticmethod
    def full_view(ctx: Builder, marker: _VarMarker) -> "TensorRef":
        dims = [("range", IntConst(0), s) for s in marker.shape]
        return TensorRef(ctx, marker.name, marker.dtype, dims, marker)

    # -- metadata -----------------------------------------------------------
    @property
    def ndim(self) -> int:
        return sum(1 for d in self.dims if d[0] == "range")

    def shape(self, i: Optional[int] = None):
        """Shape of this view: ``shape()`` returns a tuple of expressions
        (plain ints where constant); ``shape(i)`` one dimension."""
        lens = [d[2] for d in self.dims if d[0] == "range"]
        lens = [l.val if isinstance(l, IntConst) else l for l in lens]
        if i is None:
            return tuple(lens)
        return lens[i]

    @property
    def mtype(self):
        return self.marker.mtype if self.marker is not None else None

    # -- indexing ------------------------------------------------------------
    def _as_index(self, e, length) -> Expr:
        e = as_expr(e)
        if isinstance(e, IntConst) and e.val < 0:
            return length + e.val
        return e

    def __getitem__(self, args) -> "TensorRef":
        if not isinstance(args, tuple):
            args = (args,)
        if len(args) == 1 and args[0] is Ellipsis:
            return self
        if any(a is Ellipsis for a in args):
            raise StagingError("'...' is only supported as the sole index")
        new_dims: List[_Dim] = []
        queue = list(args)
        for d in self.dims:
            if d[0] == "idx" or not queue:
                new_dims.append(d)
                continue
            arg = queue.pop(0)
            start, length = d[1], d[2]
            if isinstance(arg, slice):
                if arg.step not in (None, 1):
                    raise StagingError(
                        "strided slices are not supported; use an explicit "
                        "loop to express a strided access")
                lo = (IntConst(0) if arg.start is None else self._as_index(
                    arg.start, length))
                hi = (length if arg.stop is None else self._as_index(
                    arg.stop, length))
                new_dims.append(("range", start + lo, hi - lo))
            else:
                idx = self._as_index(arg, length)
                new_dims.append(("idx", start + idx))
        if queue:
            raise StagingError(
                f"too many indices for {self.ndim}-D tensor {self.name!r}")
        return TensorRef(self.ctx, self.name, self.dtype, new_dims,
                         self.marker)

    def _full_indices(self) -> List[Expr]:
        if self.ndim != 0:
            raise StagingError(
                f"tensor {self.name!r} used as a scalar but has "
                f"{self.ndim} free dimension(s)")
        return [d[1] for d in self.dims]

    def as_load(self) -> Expr:
        """The scalar Load expression for a 0-D view."""
        return Load(self.name, self._full_indices(), self.dtype)

    # -- writing ----------------------------------------------------------
    def __setitem__(self, args, value):
        self[args]._assign(value)

    def _assign(self, value):
        """Elementwise assignment of ``value`` into this view."""
        if self.ndim == 0:
            self.ctx.emit(
                Store(self.name, self._full_indices(), as_expr(value)))
            return
        _map_elementwise_store(self, value, reduce_op=None)

    def _reduce(self, op: str, value):
        """Elementwise ``self op= value``."""
        if self.ndim == 0:
            self.ctx.emit(
                ReduceTo(self.name, self._full_indices(), op, as_expr(value)))
            return
        _map_elementwise_store(self, value, reduce_op=op)

    # -- arithmetic -----------------------------------------------------------
    def _scalar_or_self(self):
        return self.as_load() if self.ndim == 0 else self

    def _binop(self, other, fn, reverse=False):
        a, b = (other, self) if reverse else (self, other)
        a = a._scalar_or_self() if isinstance(a, TensorRef) else a
        b = b._scalar_or_self() if isinstance(b, TensorRef) else b
        if isinstance(a, TensorRef) or isinstance(b, TensorRef):
            return _elementwise_binary(self.ctx, a, b, fn)
        return fn(wrap(a), wrap(b))

    def __add__(self, other):
        return self._binop(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._binop(other, lambda a, b: a + b, reverse=True)

    def __sub__(self, other):
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binop(other, lambda a, b: a - b, reverse=True)

    def __mul__(self, other):
        return self._binop(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._binop(other, lambda a, b: a * b, reverse=True)

    def __truediv__(self, other):
        return self._binop(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self._binop(other, lambda a, b: a / b, reverse=True)

    def __floordiv__(self, other):
        return self._binop(other, lambda a, b: a // b)

    def __rfloordiv__(self, other):
        return self._binop(other, lambda a, b: a // b, reverse=True)

    def __mod__(self, other):
        return self._binop(other, lambda a, b: a % b)

    def __rmod__(self, other):
        return self._binop(other, lambda a, b: a % b, reverse=True)

    def __neg__(self):
        return self._binop(0, lambda a, b: b - a, reverse=False) \
            if self.ndim else -self.as_load()

    def __abs__(self):
        return _elementwise_unary(self.ctx, self, lambda a: abs(a)) \
            if self.ndim else abs(self.as_load())

    # comparisons only make sense element-wise on scalars
    def _cmp(self, other, fn):
        if self.ndim != 0:
            raise StagingError("comparisons require 0-D (scalar) tensors")
        other = as_expr(other)
        return fn(self.as_load(), other)

    def __lt__(self, other):
        return self._cmp(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._cmp(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._cmp(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._cmp(other, lambda a, b: a >= b)

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp(other, lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp(other, lambda a, b: a != b)

    def __hash__(self):
        return id(self)

    def __bool__(self):
        raise StagingError(
            "a tensor cannot be used as a Python boolean during staging")

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"TensorRef({self.name}, ndim={self.ndim}, "
                f"dtype={self.dtype})")


ScalarLike = Union[int, float, bool, Expr, TensorRef]


def as_expr(value) -> Expr:
    """Convert a staging value to a scalar IR expression."""
    if isinstance(value, TensorRef):
        return value.as_load()
    return wrap(value)


def _common_dtype(a, b) -> DataType:
    da = a.dtype if isinstance(a, (TensorRef, Expr)) else wrap(a).dtype
    db = b.dtype if isinstance(b, (TensorRef, Expr)) else wrap(b).dtype
    return join_dtype(da, db)


def _map_elementwise_store(target: TensorRef, value, reduce_op):
    """Emit loops storing/reducing ``value`` into every element of target.

    ``value`` may be a scalar (broadcast) or a TensorRef of the same ndim.
    """
    ctx = target.ctx
    if isinstance(value, TensorRef) and value.ndim not in (0, target.ndim):
        raise StagingError(
            f"shape mismatch: assigning {value.ndim}-D into "
            f"{target.ndim}-D view of {target.name!r}")

    def rec(tgt: TensorRef, val):
        if tgt.ndim == 0:
            v = as_expr(val)
            if reduce_op is None:
                tgt._assign(v)
            else:
                tgt._reduce(reduce_op, v)
            return
        with ctx.for_range("i_ew", 0, tgt.shape(0)) as i:
            sub_val = val[i] if isinstance(val, TensorRef) and val.ndim \
                else val
            rec(tgt[i], sub_val)

    rec(target, value)


def _elementwise_binary(ctx: Builder, a, b, fn) -> TensorRef:
    """Create a temporary holding elementwise ``fn(a, b)``."""
    tensor = a if isinstance(a, TensorRef) else b
    if isinstance(a, TensorRef) and isinstance(b, TensorRef) \
            and a.ndim != b.ndim:
        raise StagingError(
            "elementwise operation on tensors of different ndim "
            f"({a.ndim} vs {b.ndim}); broadcasting is only supported "
            "against scalars")
    probe = fn(_probe_expr(a), _probe_expr(b))
    marker = ctx.define("tmp", [d[2] for d in tensor.dims
                                if d[0] == "range"], probe.dtype,
                        "cache", tensor.mtype or ctx.default_mtype)
    marker.fresh_unbound = True
    out = TensorRef.full_view(ctx, marker)

    def rec(o, x, y):
        if o.ndim == 0:
            o._assign(fn(as_expr(x), as_expr(y)))
            return
        with ctx.for_range("i_ew", 0, o.shape(0)) as i:
            xi = x[i] if isinstance(x, TensorRef) and x.ndim else x
            yi = y[i] if isinstance(y, TensorRef) and y.ndim else y
            rec(o[i], xi, yi)

    rec(out, a, b)
    return out


def _elementwise_unary(ctx: Builder, a: TensorRef, fn) -> TensorRef:
    probe = fn(_probe_expr(a))
    marker = ctx.define("tmp", [d[2] for d in a.dims if d[0] == "range"],
                        probe.dtype, "cache", a.mtype or ctx.default_mtype)
    marker.fresh_unbound = True
    out = TensorRef.full_view(ctx, marker)

    def rec(o, x):
        if o.ndim == 0:
            o._assign(fn(as_expr(x)))
            return
        with ctx.for_range("i_ew", 0, o.shape(0)) as i:
            rec(o[i], x[i])

    rec(out, a)
    return out


def _probe_expr(v) -> Expr:
    """A representative scalar expression for dtype inference."""
    if isinstance(v, TensorRef):
        return Load(v.name, [IntConst(0)] * len(v.dims), v.dtype)
    return wrap(v)


# ---------------------------------------------------------------------------
# Scalar math usable on both Expr and TensorRef (element-wise when N-D)
# ---------------------------------------------------------------------------


def _lift_unary(name):

    def fn(x):
        if isinstance(x, TensorRef) and x.ndim > 0:
            return _elementwise_unary(x.ctx, x,
                                      lambda a: makeIntrinsic(name, [a]))
        return makeIntrinsic(name, [as_expr(x)])

    fn.__name__ = name
    fn.__doc__ = f"Element-wise ``{name}`` on scalars or tensors."
    return fn


sqrt = _lift_unary("sqrt")
exp = _lift_unary("exp")
log = _lift_unary("log")
sin = _lift_unary("sin")
cos = _lift_unary("cos")
tan = _lift_unary("tan")
tanh = _lift_unary("tanh")
sigmoid = _lift_unary("sigmoid")
floor = _lift_unary("floor")
ceil = _lift_unary("ceil")
erf = _lift_unary("erf")


def ft_abs(x):
    """Element-wise absolute value (also reachable as builtin ``abs``)."""
    if isinstance(x, TensorRef) and x.ndim > 0:
        return _elementwise_unary(x.ctx, x, lambda a: abs(a))
    return abs(as_expr(x))


def _reduce2(fn, fname):

    def out(*args):
        if len(args) == 1:
            args = tuple(args[0])
        if len(args) < 2:
            raise StagingError(f"{fname}() needs at least two arguments")
        acc = as_expr(args[0])
        for a in args[1:]:
            acc = fn(acc, as_expr(a))
        return acc

    out.__name__ = fname
    out.__doc__ = f"Scalar ``{fname}`` of two or more staged values."
    return out


ft_min = _reduce2(makeMin, "min")
ft_max = _reduce2(makeMax, "max")


class _TensorAnnotation:
    """Parameter annotation: ``Tensor[shape, dtype, atype, mtype?]``.

    ``shape`` is a tuple whose entries are ints or strings; a string names a
    by-value integer parameter (created automatically, shared across uses).
    """

    def __init__(self, spec):
        if not isinstance(spec, tuple) or len(spec) < 3:
            raise StagingError(
                "Tensor annotation must be Tensor[shape, dtype, atype] "
                "or Tensor[shape, dtype, atype, mtype]")
        shape = spec[0]
        if not isinstance(shape, tuple):
            shape = (shape,)
        self.shape = shape
        self.dtype = spec[1]
        self.atype = spec[2]
        self.mtype = spec[3] if len(spec) > 3 else None


class Tensor:
    """Annotation type for DSL tensor parameters; see the frontend docs."""

    def __class_getitem__(cls, spec):
        return _TensorAnnotation(spec)


class Size:
    """Annotation type for an explicit by-value integer parameter."""

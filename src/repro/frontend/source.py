"""Source-location capture for staged DSL programs.

``@transform`` compiles the rewritten AST against the user's real source
file with the original line numbers (see ``staging._rewrite_function``),
and registers the resulting code objects here. While the staged function
executes, :func:`current_span` walks the Python call stack to the nearest
registered frame and reports ``(filename, line)`` — the DSL line whose
execution is emitting IR right now. The builder stamps that span onto
every emitted statement, so diagnostics (``repro.verify``) can point at
user code.

Set ``REPRO_NO_SPANS=1`` to disable capture entirely (spans are purely
informational; nothing in the compile path depends on them).
"""

from __future__ import annotations

import os
import sys
import types
from typing import Optional, Tuple

#: code objects produced by ``@transform`` / ``@inline`` rewriting
_STAGED_CODE = set()

#: frames to walk before giving up (staging helpers sit just a few frames
#: above the user's code; a large cap only guards against pathological
#: recursion between here and the staged frame)
_MAX_WALK = 256


def register_staged(code) -> None:
    """Register a staged function's code object (and any nested code)."""
    _STAGED_CODE.add(code)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            register_staged(const)


def spans_enabled() -> bool:
    return os.environ.get("REPRO_NO_SPANS", "") != "1"


def current_span() -> Optional[Tuple[str, int]]:
    """The DSL source line currently executing, or None.

    Walks from the caller towards the stack root and returns the first
    frame whose code object was registered by :func:`register_staged` —
    i.e. the innermost staged function (an ``@inline`` helper counts, so
    diagnostics point into the helper rather than at its call site).
    """
    if not _STAGED_CODE or not spans_enabled():
        return None
    frame = sys._getframe(1)
    for _ in range(_MAX_WALK):
        if frame is None:
            return None
        if frame.f_code in _STAGED_CODE:
            return (frame.f_code.co_filename, frame.f_lineno)
        frame = frame.f_back
    return None

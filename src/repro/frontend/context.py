"""Staging context: builds stack-scoped IR while the user's Python function
executes symbolically.

The builder maintains a stack of open scopes. Emitted statements go to the
innermost scope. Defining a tensor inserts a marker; when the scope closes,
every statement after the marker becomes the body of the corresponding
:class:`~repro.ir.stmt.VarDef`, which realises the paper's stack-scoped AST.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from ..errors import StagingError
from ..ir import (AccessType, DataType, For, ForProperty, If, MemType, Stmt,
                  StmtSeq, VarDef, Var, Expr, wrap, seq)
from .source import current_span


class _VarMarker:
    """Placeholder for a VarDef opened mid-scope."""

    __slots__ = ("name", "shape", "dtype", "atype", "mtype", "pinned",
                 "label", "closed", "init_data", "fresh_unbound", "span")

    def __init__(self, name, shape, dtype, atype, mtype, pinned, label):
        self.name = name
        self.shape = tuple(wrap(s) for s in shape)
        self.dtype = DataType.parse(dtype)
        self.atype = AccessType.parse(atype)
        self.mtype = MemType.parse(mtype)
        self.pinned = pinned
        self.label = label
        self.closed = False
        self.init_data = None  # compile-time constant contents (capture())
        #: a freshly created temporary not yet bound to a user name; binding
        #: it renames the tensor in place instead of copying (the user holds
        #: no other reference, so copy-by-value semantics are preserved)
        self.fresh_unbound = False
        #: Python source span of the definition site
        self.span = current_span()


class _AssertMarker:
    """Placeholder for an Assert covering the rest of its scope."""

    __slots__ = ("cond", "span")

    def __init__(self, cond):
        self.cond = cond
        self.span = current_span()


class Builder:
    """Accumulates IR statements during staging."""

    def __init__(self, default_mtype: str = "cpu"):
        self.default_mtype = MemType.parse(default_mtype)
        self._scopes: List[list] = [[]]
        self._names: set = set()
        self.markers: Dict[str, _VarMarker] = {}
        #: declaration order of tensor parameters
        self.params: List[str] = []
        #: by-value scalar parameters
        self.scalar_params: List[str] = []
        #: names returned from the function, in order
        self.returns: List[str] = []
        self._pending_label: Optional[str] = None

    # -- labels ------------------------------------------------------------
    def set_label(self, name: str):
        """Attach ``name`` to the next staged statement."""
        self._pending_label = name

    def take_label(self) -> Optional[str]:
        out, self._pending_label = self._pending_label, None
        return out

    # -- naming ---------------------------------------------------------
    def fresh(self, base: str) -> str:
        name = base
        i = 1
        while name in self._names:
            name = f"{base}.{i}"
            i += 1
        self._names.add(name)
        return name

    # -- scopes ----------------------------------------------------------
    def open_scope(self):
        self._scopes.append([])

    def close_scope(self) -> Stmt:
        items = self._scopes.pop()
        return self._build_scope(items)

    def _build_scope(self, items) -> Stmt:
        out = []
        for pos, item in enumerate(items):
            if isinstance(item, _VarMarker):
                item.closed = True
                inner = self._build_scope(items[pos + 1:])
                vd = VarDef(item.name, item.shape, item.dtype, item.atype,
                            item.mtype, inner, item.pinned, label=item.label)
                if item.init_data is not None:
                    vd.init_data = item.init_data
                vd.span = item.span
                out.append(vd)
                break
            if isinstance(item, _AssertMarker):
                from ..ir import Assert

                inner = self._build_scope(items[pos + 1:])
                stmt = Assert(item.cond, inner)
                stmt.span = item.span
                out.append(stmt)
                break
            out.append(item)
        if len(out) == 1:
            return out[0]
        return StmtSeq(out)

    def emit(self, stmt: Stmt):
        if stmt.label is None and self._pending_label is not None:
            stmt.label = self.take_label()
        if stmt.span is None:
            stmt.span = current_span()
        self._scopes[-1].append(stmt)

    def assert_stmt(self, cond):
        """Stage an assertion covering the rest of the current scope."""
        self._scopes[-1].append(_AssertMarker(wrap(cond)))

    def rename_everywhere(self, old: str, new_base: str) -> str:
        """Rename tensor ``old`` across all open scopes; returns new name.

        Only valid while the tensor's VarDef marker is still open, i.e. all
        statements mentioning it live in currently-open scope lists.
        """
        from ..ir import Stmt as _IRStmt
        from ..ir import rename_tensor

        # The old name disappears entirely, so it may be reused: this lets
        # `y = ft.zeros(...)` produce a tensor actually named "y".
        self._names.discard(old)
        new = self.fresh(new_base)
        if new == old:
            return new
        for scope in self._scopes:
            for i, item in enumerate(scope):
                if isinstance(item, _IRStmt):
                    scope[i] = rename_tensor(item, old, new)
                elif isinstance(item, _VarMarker) and item.name == old:
                    item.name = new
        self.markers[new] = self.markers.pop(old)
        return new

    # -- tensors -----------------------------------------------------------
    def define(self,
               base_name: str,
               shape,
               dtype,
               atype: str = "cache",
               mtype: Optional[str] = None,
               pinned: bool = False,
               label: Optional[str] = None) -> _VarMarker:
        """Open a VarDef covering the rest of the current scope."""
        name = self.fresh(base_name)
        if label is None:
            label = self.take_label()
        marker = _VarMarker(name, shape, dtype, atype,
                            mtype if mtype is not None else self.default_mtype,
                            pinned, label)
        self.markers[name] = marker
        self._scopes[-1].append(marker)
        return marker

    def declare_param(self, marker: _VarMarker):
        self.params.append(marker.name)

    def declare_scalar_param(self, name: str) -> Var:
        name_unique = self.fresh(name)
        if name_unique != name:
            raise StagingError(f"duplicate scalar parameter {name!r}")
        self.scalar_params.append(name)
        return Var(name)

    def mark_return(self, name: str):
        marker = self.markers.get(name)
        if marker is None:
            raise StagingError(f"cannot return {name!r}: not a local tensor")
        if marker.atype is AccessType.CACHE:
            marker.atype = AccessType.OUTPUT
        self.returns.append(name)

    # -- control flow -------------------------------------------------------
    @contextmanager
    def for_range(self, name_hint: str, begin, end, step: int = 1,
                  label: Optional[str] = None):
        """Stage a ``for`` loop; yields the iterator expression.

        Non-unit (constant) steps are normalised to a unit-step loop over a
        trip-count iterator, keeping the polyhedral model exact.
        """
        begin, end = wrap(begin), wrap(end)
        if label is None:
            label = self.take_label()
        span = current_span()  # the `for` line, not the end of the body
        if step == 1:
            it = self.fresh(name_hint)
            self.open_scope()
            yield Var(it)
            body = self.close_scope()
            loop = For(it, begin, end, body, label=label)
            loop.span = span
            self.emit(loop)
            return
        if not isinstance(step, int) or step == 0:
            raise StagingError("loop step must be a non-zero Python int")
        it = self.fresh(name_hint)
        if step > 0:
            trip = (end - begin + (step - 1)) // step
        else:
            trip = (begin - end + (-step - 1)) // (-step)
        self.open_scope()
        yield begin + Var(it) * step
        body = self.close_scope()
        loop = For(it, 0, trip, body, label=label)
        loop.span = span
        self.emit(loop)

    @contextmanager
    def if_stmt(self, cond, label: Optional[str] = None):
        if label is None:
            label = self.take_label()
        span = current_span()  # the `if` line
        self.open_scope()
        yield
        body = self.close_scope()
        stmt = If(wrap(cond), body, label=label)
        stmt.span = span
        self.emit(stmt)

    @contextmanager
    def else_stmt(self):
        scope = self._scopes[-1]
        if not scope or not isinstance(scope[-1], If) \
                or scope[-1].else_case is not None:
            raise StagingError("'else' without a matching staged 'if'")
        self.open_scope()
        yield
        body = self.close_scope()
        prev: If = scope[-1]
        prev.else_case = body

    # -- finish ---------------------------------------------------------------
    def finish(self) -> Stmt:
        if len(self._scopes) != 1:
            raise StagingError("unbalanced scopes at end of staging")
        return self.close_scope()

"""Staging: turning free-form Python functions into FreeTensor IR.

``@transform`` rewrites a function's AST so that, when executed once with
symbolic arguments, it *emits* IR instead of computing values:

* ``for i in range(...)`` loops become :class:`~repro.ir.stmt.For` nodes
  (any other iterable loops run natively at staging time);
* ``if`` statements on **symbolic** conditions become
  :class:`~repro.ir.stmt.If` nodes, while ``if`` statements on **concrete**
  compile-time values execute natively — this is the paper's *partial
  evaluation* (section 4.1): conditions over tensor meta-data (``.ndim``,
  concrete shapes) are decided during staging, so dimension-free recursion
  unrolls into nested loops;
* function calls execute at staging time, i.e. every call is inlined
  (paper section 3.2, "always-inlined function calls");
* assignments and augmented assignments on tensors emit ``Store`` /
  ``ReduceTo`` nodes.

``@inline`` applies the same rewriting but stages into the *caller's*
context instead of producing a standalone program — use it for helper
functions (the operator library ``repro.libop`` is built this way).
"""

from __future__ import annotations

import ast
import copy
import functools
import inspect
import textwrap
from typing import Dict, List, Optional

from ..errors import StagingError
from ..ir import Expr, Func, IntConst, Var, wrap
from .context import Builder
from .source import register_staged
from .tensor import (Size, Tensor, TensorRef, _TensorAnnotation, as_expr,
                     ft_abs, ft_max, ft_min)

# ---------------------------------------------------------------------------
# The active-context stack (supports nested inlining)
# ---------------------------------------------------------------------------

_CTX_STACK: List[Builder] = []

#: nesting depth of @inline helper calls (0 = the top @transform body)
_INLINE_DEPTH = [0]


def cur_ctx() -> Builder:
    """The innermost active staging context."""
    if not _CTX_STACK:
        raise StagingError(
            "no active staging context; DSL constructs can only run inside "
            "a @transform-ed function")
    return _CTX_STACK[0 + len(_CTX_STACK) - 1]


def in_staging() -> bool:
    """Whether staging is currently active."""
    return bool(_CTX_STACK)


# ---------------------------------------------------------------------------
# Helpers callable from user-level DSL code
# ---------------------------------------------------------------------------


def empty(shape, dtype="f32", mtype=None) -> TensorRef:
    """Create an uninitialised tensor (paper's ``create_var``)."""
    ctx = cur_ctx()
    if not isinstance(shape, (tuple, list)):
        shape = (shape,)
    marker = ctx.define("t", [wrap(_as_dim(s)) for s in shape], dtype,
                        "cache", mtype)
    marker.fresh_unbound = True
    return TensorRef.full_view(ctx, marker)


def _as_dim(s):
    if isinstance(s, TensorRef):
        return s.as_load()
    if isinstance(s, str):
        if not _CUR_SYMBOLS:
            raise StagingError(
                f"named dimension {s!r} outside a @transform context")
        return _CUR_SYMBOLS[-1].resolve(s)
    return s


create_var = empty  # the paper's name for it


def zeros(shape, dtype="f32", mtype=None) -> TensorRef:
    """Create a tensor filled with zeros."""
    t = empty(shape, dtype, mtype)
    t[...] = 0.0 if t.dtype.is_float else 0
    return t


def ones(shape, dtype="f32", mtype=None) -> TensorRef:
    """Create a tensor filled with ones."""
    t = empty(shape, dtype, mtype)
    t[...] = 1.0 if t.dtype.is_float else 1
    return t


def label(name: str):
    """Attach a label to the next staged statement (for schedules)."""
    cur_ctx().set_label(name)


def capture(array, dtype=None, mtype=None) -> TensorRef:
    """Embed a concrete NumPy array as a compile-time constant tensor."""
    import numpy as np

    from ..ir import from_numpy_dtype

    ctx = cur_ctx()
    array = np.asarray(array)
    dt = dtype if dtype is not None else from_numpy_dtype(array.dtype).value
    marker = ctx.define("const", list(array.shape), dt, "cache", mtype)
    marker.init_data = array  # picked up by backends
    return TensorRef.full_view(ctx, marker)


# ---------------------------------------------------------------------------
# The runtime namespace used by rewritten code (bound as ``__ft__``)
# ---------------------------------------------------------------------------

_UNDEF = object()


class _DeferredParam:
    """A parameter not yet declared (declaration appears in the body)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class _StagingRuntime:
    """Namespace of helpers that rewritten code calls (as ``__ft__.*``)."""

    # -- control flow -----------------------------------------------------
    @staticmethod
    def for_range(name, *args):
        if len(args) == 1:
            begin, end, step = 0, args[0], 1
        elif len(args) == 2:
            begin, end, step = args[0], args[1], 1
        elif len(args) == 3:
            begin, end, step = args
        else:
            raise StagingError("range() takes 1 to 3 arguments")
        begin = _coerce_int(begin)
        end = _coerce_int(end)
        if isinstance(step, Expr):
            if isinstance(step, IntConst):
                step = step.val
            else:
                raise StagingError("loop step must be a compile-time int")
        return cur_ctx().for_range(name, begin, end, step)

    @staticmethod
    def is_symbolic(cond) -> bool:
        return isinstance(cond, (Expr, TensorRef))

    @staticmethod
    def if_ctx(cond):
        return cur_ctx().if_stmt(as_expr(cond))

    @staticmethod
    def else_ctx():
        return cur_ctx().else_stmt()

    @staticmethod
    def assert_(cond):
        if isinstance(cond, (Expr, TensorRef)):
            cur_ctx().assert_stmt(as_expr(cond))
        else:
            assert cond

    # -- bindings -------------------------------------------------------------
    @staticmethod
    def try_lookup(thunk):
        try:
            return thunk()
        except (NameError, UnboundLocalError):
            return _UNDEF

    @staticmethod
    def assign(name: str, value, prev):
        """Semantics of ``name = value`` during staging.

        * new float scalar (Python float or float-typed expression) —
          materialise a 0-D tensor (so it can be updated inside loops);
        * new int/bool scalar or expression — stays a compile-time value;
        * tensor value — copy by value into a fresh tensor (paper 3.1);
        * rebinding an existing tensor — element-wise store into it.
        """
        if isinstance(prev, TensorRef) and prev.marker is not None \
                and prev.marker.closed:
            # the previous binding's scope has ended (e.g. a loop-local
            # scalar reused in a later loop): this is a fresh definition
            prev = _UNDEF
        if isinstance(prev, TensorRef) and not isinstance(prev,
                                                          _DeferredParam):
            if isinstance(value, TensorRef) and value.ndim == prev.ndim:
                prev._assign(value)
                return prev
            if prev.ndim == 0 and isinstance(value, (int, float, bool, Expr)):
                prev._assign(value)
                return prev
            if isinstance(value,
                          (int, float, bool, Expr)) and prev.ndim > 0:
                prev._assign(value)  # broadcast fill
                return prev
        if isinstance(value, TensorRef) and value.marker is not None \
                and value.marker.fresh_unbound and not value.marker.closed \
                and _is_full_view(value):
            # Binding a freshly-created temporary: rename instead of copy.
            marker = value.marker
            marker.fresh_unbound = False
            cur_ctx().rename_everywhere(marker.name, name)
            return TensorRef.full_view(cur_ctx(), marker)
        if isinstance(value, TensorRef):
            if value.ndim == 0:
                return _materialise_scalar(name, value.as_load())
            return _copy_tensor(name, value)
        if isinstance(value, Expr) and value.dtype.is_float:
            return _materialise_scalar(name, value)
        if isinstance(value, float):
            return _materialise_scalar(name, wrap(value))
        return value

    @staticmethod
    def aug(op: str, prev, value):
        """Semantics of ``name op= value`` during staging."""
        if isinstance(prev, TensorRef):
            if prev.marker is not None and prev.marker.closed:
                raise StagingError(
                    f"tensor {prev.name!r} is updated outside the scope "
                    f"it was defined in")
            _reduce_into(prev, op, value)
            return prev
        if isinstance(prev, Expr) or isinstance(value, (Expr, TensorRef)):
            return _APPLY_BIN[op](prev, _scalarise(value))
        return _APPLY_BIN[op](prev, value)  # plain Python

    @staticmethod
    def aug_setitem(obj, index, op: str, value):
        """Semantics of ``obj[index] op= value`` during staging."""
        if isinstance(obj, TensorRef):
            _reduce_into(obj[index], op, value)
            return
        obj[index] = _APPLY_BIN[op](obj[index], value)

    @staticmethod
    def declare(name: str, annotation, prev):
        if not isinstance(annotation, _TensorAnnotation):
            raise StagingError(
                f"declaration of {name!r} must use Tensor[shape, dtype, "
                f"atype(, mtype)]")
        if isinstance(prev, _DeferredParam) or prev is _UNDEF:
            return _declare_tensor_param(name, annotation)
        raise StagingError(
            f"{name!r} is already bound; tensor declarations must come "
            f"before any use")

    @staticmethod
    def ret(value):
        if _INLINE_DEPTH[0] > 0:
            # returning from an @inline helper: a plain value hand-off
            return value
        ctx = cur_ctx()
        if len(ctx._scopes) != 1:
            raise StagingError(
                "return inside staged control flow is not supported; "
                "return once at the end of the function")
        if value is None:
            return None
        items = value if isinstance(value, tuple) else (value,)
        for item in items:
            _return_one(ctx, item)
        return value

    # -- boolean operators (short-circuit is lost on symbolic values) -------
    @staticmethod
    def and_(*args):
        out = args[0]
        for a in args[1:]:
            if isinstance(out, (Expr, TensorRef)) or \
                    isinstance(a, (Expr, TensorRef)):
                out = as_expr(out).logical_and(as_expr(a))
            else:
                out = out and a
        return out

    @staticmethod
    def or_(*args):
        out = args[0]
        for a in args[1:]:
            if isinstance(out, (Expr, TensorRef)) or \
                    isinstance(a, (Expr, TensorRef)):
                out = as_expr(out).logical_or(as_expr(a))
            else:
                out = out or a
        return out

    @staticmethod
    def not_(x):
        if isinstance(x, (Expr, TensorRef)):
            return as_expr(x).logical_not()
        return not x

    # -- rewritten builtins ------------------------------------------------
    @staticmethod
    def min_(*args):
        if _all_concrete(args):
            return min(*args)
        return ft_min(*args)

    @staticmethod
    def max_(*args):
        if _all_concrete(args):
            return max(*args)
        return ft_max(*args)

    @staticmethod
    def abs_(x):
        if isinstance(x, (Expr, TensorRef)):
            return ft_abs(x)
        return abs(x)

    @staticmethod
    def len_(x):
        if isinstance(x, TensorRef):
            return x.shape(0)
        return len(x)


_APPLY_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
}


def _all_concrete(args) -> bool:
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        args = args[0]
    return all(isinstance(a, (int, float, bool)) for a in args)


def _scalarise(v):
    return v.as_load() if isinstance(v, TensorRef) else v


def _coerce_int(v):
    if isinstance(v, TensorRef):
        return v.as_load()
    return v


def _materialise_scalar(name: str, value: Expr) -> TensorRef:
    ctx = cur_ctx()
    marker = ctx.define(name, (), value.dtype, "cache", None)
    ref = TensorRef.full_view(ctx, marker)
    ref._assign(value)
    return ref


def _copy_tensor(name: str, value: TensorRef) -> TensorRef:
    ctx = cur_ctx()
    shape = [d[2] for d in value.dims if d[0] == "range"]
    marker = ctx.define(name, shape, value.dtype, "cache",
                        value.mtype or ctx.default_mtype)
    ref = TensorRef.full_view(ctx, marker)
    ref._assign(value)
    return ref


def _reduce_into(target: TensorRef, op: str, value):
    if op in ("+", "*"):
        target._reduce(op, value)
    elif op == "-":
        target._reduce("+", _negate(value))
    elif op == "/":
        target._reduce("*", 1.0 / value if not isinstance(value, TensorRef)
                       else 1.0 / value.as_load())
    else:
        raise StagingError(f"unsupported in-place operator {op!r} on tensors")


def _negate(v):
    if isinstance(v, TensorRef):
        return -v
    return -v


def _return_one(ctx: Builder, item):
    if not isinstance(item, TensorRef):
        raise StagingError("only tensors can be returned from DSL functions")
    if item.marker is not None and _is_full_view(item):
        ctx.mark_return(item.name)
        return
    # Returning a view or computed slice: copy into a fresh output tensor.
    out = _copy_tensor("out", item)
    ctx.mark_return(out.name)


def _is_full_view(ref: TensorRef) -> bool:
    if ref.marker is None or len(ref.dims) != len(ref.marker.shape):
        return False
    from ..ir import same_expr

    for d, s in zip(ref.dims, ref.marker.shape):
        if d[0] != "range":
            return False
        if not (isinstance(d[1], IntConst) and d[1].val == 0):
            return False
        if not same_expr(d[2], s):
            return False
    return True


# ---------------------------------------------------------------------------
# Declaration of parameters
# ---------------------------------------------------------------------------


class _SymbolTable:
    """Per-staging map from string dimension names to scalar parameters."""

    def __init__(self, ctx: Builder):
        self.ctx = ctx
        self.syms: Dict[str, Var] = {}

    def resolve(self, dim):
        if isinstance(dim, str):
            if dim not in self.syms:
                self.syms[dim] = self.ctx.declare_scalar_param(dim)
            return self.syms[dim]
        if isinstance(dim, (int, Expr)):
            return dim
        if isinstance(dim, TensorRef):
            return dim.as_load()
        raise StagingError(f"bad dimension spec: {dim!r}")


_CUR_SYMBOLS: List[_SymbolTable] = []
_CUR_SPECS: List[Dict[str, "ParamSpec"]] = []


class ParamSpec:
    """Annotation-level description of a tensor parameter (for the driver)."""

    __slots__ = ("name", "shape", "dtype", "atype", "mtype")

    def __init__(self, name, shape, dtype, atype, mtype):
        self.name = name
        self.shape = tuple(shape)  # entries: int | str | Expr
        self.dtype = dtype
        self.atype = atype
        self.mtype = mtype

    def __repr__(self):  # pragma: no cover
        return (f"ParamSpec({self.name}, {self.shape}, {self.dtype}, "
                f"{self.atype})")


def _declare_tensor_param(name: str, ann: _TensorAnnotation) -> TensorRef:
    ctx = cur_ctx()
    if not _CUR_SYMBOLS:
        raise StagingError("tensor parameters can only be declared while "
                           "staging a @transform-ed function")
    symtab = _CUR_SYMBOLS[-1]
    shape = [symtab.resolve(d) for d in ann.shape]
    marker = ctx.define(name, shape, ann.dtype, ann.atype,
                        ann.mtype if ann.mtype is not None else None)
    if marker.name != name:
        raise StagingError(f"duplicate tensor parameter {name!r}")
    ctx.declare_param(marker)
    _CUR_SPECS[-1][name] = ParamSpec(name, ann.shape, marker.dtype,
                                     marker.atype, marker.mtype)
    return TensorRef.full_view(ctx, marker)


# ---------------------------------------------------------------------------
# AST rewriting
# ---------------------------------------------------------------------------

_BINOP_SYMBOL = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
}

_REWRITTEN_BUILTINS = {"min": "min_", "max": "max_", "abs": "abs_",
                       "len": "len_"}


def _name(id_, ctx=ast.Load()):
    return ast.Name(id=id_, ctx=ctx)


def _ft_attr(attr):
    return ast.Attribute(value=_name("__ft__"), attr=attr, ctx=ast.Load())


def _call(fn, args, keywords=()):
    return ast.Call(func=fn, args=list(args), keywords=list(keywords))


class _Rewriter(ast.NodeTransformer):
    """Rewrites a user function body into staging code."""

    def __init__(self):
        self._tmp = 0

    def visit(self, node):
        # Replacement nodes inherit the original node's source location, so
        # the compiled code (and the spans captured from it) points at the
        # user's line, not at whatever fix_missing_locations would guess.
        out = super().visit(node)
        if hasattr(node, "lineno"):
            for new in out if isinstance(out, list) else (out,):
                if isinstance(new, ast.AST) and isinstance(
                        new, (ast.stmt, ast.expr)):
                    ast.copy_location(new, node)
        return out

    def _fresh(self) -> str:
        self._tmp += 1
        return f"__ft_c{self._tmp}"

    # -- loops ------------------------------------------------------------
    def visit_For(self, node: ast.For):
        self.generic_visit(node)
        it = node.iter
        is_range = (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range")
        if not is_range:
            return node  # native Python loop (static unrolling)
        if node.orelse:
            raise StagingError("for/else is not supported in staged loops")
        if not isinstance(node.target, ast.Name):
            raise StagingError("staged loops need a single iterator name")
        rng_args = [ast.Constant(value=node.target.id)] + it.args
        item = ast.withitem(
            context_expr=_call(_ft_attr("for_range"), rng_args),
            optional_vars=ast.Name(id=node.target.id, ctx=ast.Store()))
        return ast.With(items=[item], body=node.body)

    def visit_While(self, node):
        raise StagingError("while loops are not supported in the DSL "
                           "(loop trip counts must be range()-expressible)")

    # -- conditionals ----------------------------------------------------
    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        cond_name = self._fresh()
        assign_cond = ast.Assign(
            targets=[ast.Name(id=cond_name, ctx=ast.Store())],
            value=node.test)
        then_a, then_b = node.body, copy.deepcopy(node.body)
        else_a = node.orelse
        else_b = copy.deepcopy(node.orelse)
        staged: List[ast.stmt] = [
            ast.With(items=[
                ast.withitem(context_expr=_call(_ft_attr("if_ctx"),
                                                [_name(cond_name)]))
            ],
                     body=then_a)
        ]
        if else_a:
            staged.append(
                ast.With(items=[
                    ast.withitem(context_expr=_call(_ft_attr("else_ctx"), []))
                ],
                         body=else_a))
        native = ast.If(test=_name(cond_name), body=then_b, orelse=else_b)
        dispatch = ast.If(test=_call(_ft_attr("is_symbolic"),
                                     [_name(cond_name)]),
                          body=staged,
                          orelse=[native])
        return [assign_cond, dispatch]

    # -- assignments -----------------------------------------------------
    def visit_Assign(self, node: ast.Assign):
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            lookup = _call(
                _ft_attr("try_lookup"),
                [ast.Lambda(args=_empty_args(), body=_name(name))])
            call = _call(_ft_attr("assign"),
                         [ast.Constant(value=name), node.value, lookup])
            return ast.Assign(targets=node.targets, value=call)
        return node

    def visit_AugAssign(self, node: ast.AugAssign):
        self.generic_visit(node)
        op = _BINOP_SYMBOL.get(type(node.op))
        if op is None:
            return node
        if isinstance(node.target, ast.Name):
            name = node.target.id
            call = _call(_ft_attr("aug"), [
                ast.Constant(value=op),
                _name(name), node.value
            ])
            return ast.Assign(targets=[ast.Name(id=name, ctx=ast.Store())],
                              value=call)
        if isinstance(node.target, ast.Subscript):
            obj = node.target.value
            index = node.target.slice
            idx_expr = _subscript_index_ast(index)
            return ast.Expr(value=_call(
                _ft_attr("aug_setitem"),
                [obj, idx_expr,
                 ast.Constant(value=op), node.value]))
        return node

    def visit_AnnAssign(self, node: ast.AnnAssign):
        self.generic_visit(node)
        if node.value is None and isinstance(node.target, ast.Name):
            name = node.target.id
            lookup = _call(
                _ft_attr("try_lookup"),
                [ast.Lambda(args=_empty_args(), body=_name(name))])
            call = _call(
                _ft_attr("declare"),
                [ast.Constant(value=name), node.annotation, lookup])
            return ast.Assign(
                targets=[ast.Name(id=name, ctx=ast.Store())], value=call)
        if node.value is not None and isinstance(node.target, ast.Name):
            return self.visit_Assign(
                ast.Assign(targets=[ast.Name(id=node.target.id,
                                             ctx=ast.Store())],
                           value=node.value))
        return node

    # -- returns / asserts --------------------------------------------------
    def visit_Return(self, node: ast.Return):
        self.generic_visit(node)
        value = node.value if node.value is not None else ast.Constant(
            value=None)
        return ast.Return(value=_call(_ft_attr("ret"), [value]))

    def visit_Assert(self, node: ast.Assert):
        self.generic_visit(node)
        return ast.Expr(value=_call(_ft_attr("assert_"), [node.test]))

    # -- builtin call rewriting ----------------------------------------------
    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if isinstance(node.func, ast.Name) and \
                node.func.id in _REWRITTEN_BUILTINS and not node.keywords:
            node.func = _ft_attr(_REWRITTEN_BUILTINS[node.func.id])
        return node

    # -- boolean operators -------------------------------------------------
    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        fn = "and_" if isinstance(node.op, ast.And) else "or_"
        # NOTE: short-circuit evaluation is lost (operands may be
        # symbolic); see the staging docs
        return _call(_ft_attr(fn), node.values)

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return _call(_ft_attr("not_"), [node.operand])
        return node


def _empty_args():
    return ast.arguments(posonlyargs=[],
                         args=[],
                         vararg=None,
                         kwonlyargs=[],
                         kw_defaults=[],
                         kwarg=None,
                         defaults=[])


def _subscript_index_ast(index: ast.expr) -> ast.expr:
    return index


# ---------------------------------------------------------------------------
# Rewriting a function object
# ---------------------------------------------------------------------------


def _rewrite_function(fn) -> "function":
    try:
        src = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:  # pragma: no cover - env-specific
        raise StagingError(
            f"cannot get source of {fn.__name__}: {exc}") from exc
    tree = ast.parse(src)
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef,)):
        raise StagingError("@transform expects a plain function")
    fdef.decorator_list = []
    fdef.body = [_rw for stmt in fdef.body
                 for _rw in _as_list(_Rewriter().visit(stmt))]
    # Strip parameter annotations so they are not evaluated at def-time.
    for a in fdef.args.args + fdef.args.kwonlyargs:
        a.annotation = None
    fdef.returns = None
    ast.fix_missing_locations(tree)
    # Compile against the real source file with the original line numbers:
    # `getsource` starts at the decorator, whose line is co_firstlineno, so
    # shifting the parsed tree realigns every node with the file on disk.
    # Statements staged from these code objects then carry usable spans
    # (see frontend.source and the `span` attribute on IR statements).
    filename = None
    try:
        filename = inspect.getsourcefile(fn)
    except TypeError:  # pragma: no cover - builtins etc.
        pass
    if filename is None:  # pragma: no cover - env-specific
        filename = f"<staged {fn.__name__}>"
    first_line = getattr(fn.__code__, "co_firstlineno", 1)
    if first_line > 1:
        ast.increment_lineno(tree, first_line - 1)
    code = compile(tree, filename=filename, mode="exec")

    if fn.__closure__:
        namespace = dict(fn.__globals__)
        for var, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                namespace[var] = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                pass
    else:
        namespace = fn.__globals__
    namespace["__ft__"] = _StagingRuntime
    exec(code, namespace)
    staged = namespace.pop(fn.__name__)
    staged.__ft_namespace__ = namespace
    register_staged(staged.__code__)
    return staged


def _as_list(x):
    return x if isinstance(x, list) else [x]


# ---------------------------------------------------------------------------
# Public decorators
# ---------------------------------------------------------------------------


class Program:
    """A staged DSL function: IR plus parameter metadata.

    Calling a Program compiles it on demand with the default target and
    runs it (see ``repro.runtime.driver`` for explicit control).
    """

    def __init__(self, func: Func, tensor_specs: Dict[str, ParamSpec],
                 pyfunc):
        self.func = func
        self.tensor_specs = tensor_specs
        self.pyfunc = pyfunc
        self._default_exe = None

    @property
    def name(self) -> str:
        return self.func.name

    def __call__(self, *args, **kwargs):
        if in_staging():
            raise StagingError(
                f"call the undecorated body or an @inline helper instead of "
                f"the compiled program {self.name!r} during staging")
        if self._default_exe is None:
            from ..runtime.driver import build

            self._default_exe = build(self)
        return self._default_exe(*args, **kwargs)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Program {self.name} at {id(self):#x}>\n{self.func!r}"


def transform(fn=None, *, default_mtype: str = "cpu", name: Optional[str] = None):
    """Stage a Python function into a :class:`Program` (IR), at decoration
    time. Keyword form: ``@transform(default_mtype="gpu")``.
    """
    if fn is None:
        return functools.partial(transform,
                                 default_mtype=default_mtype,
                                 name=name)

    staged = _rewrite_function(fn)
    sig = inspect.signature(fn)

    ctx = Builder(default_mtype=default_mtype)
    symtab = _SymbolTable(ctx)
    specs: Dict[str, ParamSpec] = {}
    _CTX_STACK.append(ctx)
    _CUR_SYMBOLS.append(symtab)
    _CUR_SPECS.append(specs)
    ann_ns = dict(fn.__globals__)
    if fn.__closure__:
        for var, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                ann_ns[var] = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                pass
    try:
        call_args = []
        for pname, p in sig.parameters.items():
            ann = p.annotation
            if isinstance(ann, str):
                # `from __future__ import annotations` stringises them
                try:
                    ann = eval(ann, ann_ns)  # noqa: S307 - trusted source
                except Exception as exc:
                    raise StagingError(
                        f"cannot evaluate annotation of parameter "
                        f"{pname!r}: {exc}") from exc
            if isinstance(ann, _TensorAnnotation):
                call_args.append(_declare_tensor_param(pname, ann))
            elif ann is Size or ann is int:
                if pname in symtab.syms:
                    call_args.append(symtab.syms[pname])
                else:
                    call_args.append(ctx.declare_scalar_param(pname))
                    symtab.syms[pname] = Var(pname)
            elif p.default is not inspect.Parameter.empty:
                call_args.append(p.default)
            else:
                call_args.append(_DeferredParam(pname))
        staged(*call_args)
        body = ctx.finish()
    finally:
        _CTX_STACK.pop()
        _CUR_SYMBOLS.pop()
        _CUR_SPECS.pop()

    func = Func(name or fn.__name__,
                params=ctx.params,
                returns=ctx.returns,
                body=body,
                scalar_params=ctx.scalar_params)
    program = Program(func, specs, fn)
    functools.update_wrapper(program, fn, updated=())
    return program


def inline(fn):
    """Mark a helper as inlinable into staged code.

    The helper's control flow is rewritten like a @transform-ed function,
    but it emits into the caller's context. Calling an @inline function
    outside staging raises :class:`StagingError`.
    """
    staged = _rewrite_function(fn)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not in_staging():
            raise StagingError(
                f"@inline function {fn.__name__!r} can only be called from "
                f"staged code")
        _INLINE_DEPTH[0] += 1
        try:
            return staged(*args, **kwargs)
        finally:
            _INLINE_DEPTH[0] -= 1

    wrapper.__ft_inline__ = True
    # Make self-recursion resolve to the rewritten function even when the
    # helper was defined in a closure (the exec namespace is a snapshot).
    staged.__ft_namespace__[fn.__name__] = wrapper
    return wrapper

"""Parser for the pretty-printer's output format.

``parse_program(dump(func)) == func`` up to statement ids: the textual IR
round-trips, which the test suite uses to pin the printer format and to
load hand-written IR fixtures. Reductions printed as ``x = min(x, e)``
parse back as Stores; run ``repro.passes.make_reduction`` for semantic
round-trips of min/max reductions.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..errors import InvalidProgram
from . import expr as E
from . import stmt as S
from .dtype import DataType

_TOKEN_RE = re.compile(r"""
    (?P<float>\d+\.\d+(?:e[+-]?\d+)?|\d+e[+-]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][\w.]*)
  | (?P<op><=|>=|==|!=|//|\+=|\*=|->|§|¶|[-+*/%<>=!?:(),\[\]{}@])
""", re.VERBOSE)

_KEYWORDS = {"for", "in", "if", "else", "assert", "true", "false", "inf",
             "eval", "alloc", "free", "func", "and", "or"}


class _Tokens:

    def __init__(self, text: str):
        self.toks: List[str] = []
        #: JSON payloads of ``/*attrs {...}*/`` annotations, referenced
        #: from the token stream as ``¶attrs <index>`` (JSON text would
        #: not survive tokenization)
        self.attr_payloads: List[str] = []
        for line in text.splitlines():
            if "/*" in line:
                # loop/reduction annotations become explicit tokens;
                # anything else in comments is dropped
                line = re.sub(r"/\*attrs (.*?)\*/", self._stash_attrs,
                              line)
                line = re.sub(r"/\*parallel=([\w./]+)\*/",
                              r" ¶parallel \1 ", line)
                line = line.replace("/*unroll*/", " ¶unroll ")
                line = line.replace("/*vectorize*/", " ¶vectorize ")
                line = line.replace("/*atomic*/", " ¶atomic ")
                line = line.replace("/*pinned*/", " ¶pinned ")
                line = line.replace("/*prefer_libs*/", " ¶prefer_libs ")
                line = re.sub(r"/\*no_deps=([\w.,]+)\*/",
                              r" ¶no_deps \1 ", line)
                line = re.sub(r"/\*.*?\*/", "", line)
            line = re.sub(r"^\s*[\w.]+:\s", _label_tok, line)
            for m in _TOKEN_RE.finditer(line):
                self.toks.append(m.group(0))
        self.pos = 0

    def _stash_attrs(self, m: re.Match) -> str:
        self.attr_payloads.append(m.group(1))
        return f" ¶attrs {len(self.attr_payloads) - 1} "

    def peek(self, k: int = 0) -> Optional[str]:
        i = self.pos + k
        return self.toks[i] if i < len(self.toks) else None

    def next(self) -> str:
        t = self.peek()
        if t is None:
            raise InvalidProgram("unexpected end of IR text")
        self.pos += 1
        return t

    def expect(self, tok: str):
        t = self.next()
        if t != tok:
            raise InvalidProgram(f"expected {tok!r}, got {t!r} "
                                 f"(at {self.toks[max(0, self.pos-4):self.pos+3]})")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False


def _label_tok(m: re.Match) -> str:
    # "Li: for ..." -> "§ Li for ..." (labels become explicit tokens)
    inner = m.group(0).strip()
    return f"§ {inner[:-1]} "


class _Parser:

    def __init__(self, text: str):
        self.t = _Tokens(text)
        self.dtypes = {}  # tensor name -> DataType (for Load nodes)

    # -- expressions (precedence climbing) ---------------------------------
    def parse_expr(self) -> E.Expr:
        return self._ternary()

    def _ternary(self) -> E.Expr:
        cond = self._or()
        if self.t.accept("?"):
            a = self._or()
            self.t.expect(":")
            b = self._ternary()
            return E.IfExpr(cond, a, b)
        return cond

    def _or(self) -> E.Expr:
        e = self._and()
        while self.t.peek() == "or":
            self.t.next()
            e = E.LOr(e, self._and())
        return e

    def _and(self) -> E.Expr:
        e = self._cmp()
        while self.t.peek() == "and":
            self.t.next()
            e = E.LAnd(e, self._cmp())
        return e

    _CMP = {"<": E.LT, "<=": E.LE, ">": E.GT, ">=": E.GE, "==": E.EQ,
            "!=": E.NE}

    def _cmp(self) -> E.Expr:
        e = self._add()
        while self.t.peek() in self._CMP:
            op = self.t.next()
            e = self._CMP[op](e, self._add())
        return e

    def _add(self) -> E.Expr:
        e = self._mul()
        while self.t.peek() in ("+", "-"):
            op = self.t.next()
            rhs = self._mul()
            e = E.Add(e, rhs) if op == "+" else E.Sub(e, rhs)
        return e

    def _mul(self) -> E.Expr:
        e = self._unary()
        while self.t.peek() in ("*", "/", "//", "%"):
            op = self.t.next()
            rhs = self._unary()
            cls = {"*": E.Mul, "/": E.RealDiv, "//": E.FloorDiv,
                   "%": E.Mod}[op]
            e = cls(e, rhs)
        return e

    def _unary(self) -> E.Expr:
        if self.t.accept("-"):
            operand = self._unary()
            if isinstance(operand, E.IntConst):
                return E.IntConst(-operand.val)
            if isinstance(operand, E.FloatConst):
                return E.FloatConst(-operand.val)
            return E.Sub(E.wrap_like(0, operand.dtype), operand)
        if self.t.accept("!"):
            return E.LNot(self._unary())
        return self._atom()

    def _atom(self) -> E.Expr:
        t = self.t.next()
        if t == "(":
            e = self.parse_expr()
            self.t.expect(")")
            return e
        if re.fullmatch(r"\d+\.\d+(?:e[+-]?\d+)?|\d+e[+-]?\d+", t):
            return E.FloatConst(float(t))
        if re.fullmatch(r"\d+", t):
            return E.IntConst(int(t))
        if t == "true":
            return E.BoolConst(True)
        if t == "false":
            return E.BoolConst(False)
        if t == "inf":
            return E.FloatConst(float("inf"))
        # calls: min/max/intrinsics/dtype-casts
        if self.t.peek() == "(":
            self.t.next()
            args = [self.parse_expr()]
            while self.t.accept(","):
                args.append(self.parse_expr())
            self.t.expect(")")
            if t == "min":
                return E.Min(args[0], args[1])
            if t == "max":
                return E.Max(args[0], args[1])
            try:
                dtype = DataType.parse(t)
                return E.Cast(args[0], dtype)
            except ValueError:
                pass
            if t in E.INTRINSICS:
                dt = args[0].dtype
                if t not in ("abs", "pow", "unbound_min", "unbound_max") \
                        and not dt.is_float:
                    dt = DataType.FLOAT32
                return E.Intrinsic(t, args, dt)
            raise InvalidProgram(f"unknown function {t!r}")
        # load or scalar var
        if self.t.peek() == "[":
            self.t.next()
            idx = [self.parse_expr()]
            while self.t.accept(","):
                idx.append(self.parse_expr())
            self.t.expect("]")
            return E.Load(t, idx, self.dtypes.get(t, DataType.FLOAT32))
        if t in self.dtypes:  # a 0-D tensor read
            return E.Load(t, [], self.dtypes[t])
        return E.Var(t)

    # -- statements ----------------------------------------------------------
    def parse_stmts(self) -> S.Stmt:
        stmts = []
        while self.t.peek() is not None and self.t.peek() != "}":
            stmts.append(self.parse_stmt())
        return S.seq(stmts) if stmts else S.StmtSeq([])

    def parse_stmt(self) -> S.Stmt:
        label = None
        if self.t.accept("§"):
            label = self.t.next()
        t = self.t.peek()
        if t == "@":
            out = self._vardef()
        elif t == "for":
            out = self._for()
        elif t == "if":
            out = self._if()
        elif t == "assert":
            self.t.next()
            cond = self.parse_expr()
            self.t.expect("{")
            body = self.parse_stmts()
            self.t.expect("}")
            out = S.Assert(cond, body)
        elif t == "eval":
            self.t.next()
            out = S.Eval(self.parse_expr())
        elif t == "alloc":
            self.t.next()
            out = S.Alloc(self.t.next())
        elif t == "free":
            self.t.next()
            out = S.Free(self.t.next())
        elif t is not None and t.startswith("lib."):
            out = self._libcall()
        else:
            out = self._store_like()
        out.label = label
        return out

    def _vardef(self) -> S.Stmt:
        self.t.expect("@")
        atype = self.t.next()
        name = self.t.next()
        self.t.expect(":")
        dtype = DataType.parse(self.t.next())
        self.t.expect("[")
        shape = []
        if self.t.peek() != "]":
            shape.append(self.parse_expr())
            while self.t.accept(","):
                shape.append(self.parse_expr())
        self.t.expect("]")
        self.t.expect("@")
        mtype = self.t.next()
        if self.t.peek() == "/":  # mtypes like gpu/shared
            self.t.next()
            mtype += "/" + self.t.next()
        pinned = False
        if self.t.accept("¶"):
            mark = self.t.next()
            if mark != "pinned":
                raise InvalidProgram(f"unexpected annotation {mark!r}")
            pinned = True
        self.t.expect("{")
        self.dtypes[name] = dtype
        body = self.parse_stmts()
        self.t.expect("}")
        return S.VarDef(name, shape, dtype, atype, mtype, body,
                        pinned=pinned)

    def _for(self) -> S.Stmt:
        self.t.expect("for")
        it = self.t.next()
        self.t.expect("in")
        begin = self.parse_expr()
        self.t.expect(":")
        end = self.parse_expr()
        prop = S.ForProperty()
        while self.t.accept("¶"):
            kind = self.t.next()
            if kind == "parallel":
                prop.parallel = self.t.next()
            elif kind == "unroll":
                prop.unroll = True
            elif kind == "vectorize":
                prop.vectorize = True
            elif kind == "no_deps":
                names = [self.t.next()]
                while self.t.accept(","):
                    names.append(self.t.next())
                prop.no_deps = tuple(names)
            elif kind == "prefer_libs":
                prop.prefer_libs = True
            else:
                raise InvalidProgram(f"unknown loop annotation {kind!r}")
        self.t.expect("{")
        body = self.parse_stmts()
        self.t.expect("}")
        return S.For(it, begin, end, body, prop)

    def _if(self) -> S.Stmt:
        self.t.expect("if")
        cond = self.parse_expr()
        self.t.expect("{")
        then = self.parse_stmts()
        self.t.expect("}")
        els = None
        if self.t.accept("else"):
            self.t.expect("{")
            els = self.parse_stmts()
            self.t.expect("}")
        return S.If(cond, then, els)

    def _libcall(self) -> S.Stmt:
        # printed as lib.kind(outs <- args); "lib.kind" lexes as one name
        kind = self.t.next()[len("lib."):]
        self.t.expect("(")
        outs = []
        while self.t.peek() not in ("->", "<", ")"):  # "<-" lexes < -
            outs.append(self.t.next())
            self.t.accept(",")
        if self.t.accept("<"):
            self.t.expect("-")
        args = []
        while self.t.peek() != ")":
            args.append(self.t.next())
            self.t.accept(",")
        self.t.expect(")")
        attrs = None
        if self.t.accept("¶"):
            mark = self.t.next()
            if mark != "attrs":
                raise InvalidProgram(f"unexpected annotation {mark!r}")
            import json

            attrs = json.loads(self.t.attr_payloads[int(self.t.next())])
        return S.LibCall(kind, outs, args, attrs)

    def _store_like(self) -> S.Stmt:
        name = self.t.next()
        idx = []
        if self.t.accept("["):
            if self.t.peek() != "]":
                idx.append(self.parse_expr())
                while self.t.accept(","):
                    idx.append(self.parse_expr())
            self.t.expect("]")
        op = self.t.next()
        if op == "=":
            out = S.Store(name, idx, self.parse_expr())
        elif op == "+=":
            out = S.ReduceTo(name, idx, "+", self.parse_expr())
        elif op == "*=":
            out = S.ReduceTo(name, idx, "*", self.parse_expr())
        elif op in ("min", "max") and self.t.accept("="):
            out = S.ReduceTo(name, idx, op, self.parse_expr())
        else:
            raise InvalidProgram(f"unexpected assignment operator {op!r}")
        if self.t.accept("¶"):
            mark = self.t.next()
            if mark != "atomic" or not isinstance(out, S.ReduceTo):
                raise InvalidProgram(f"unexpected annotation {mark!r}")
            out.atomic = True
        return out


def parse_stmt(text: str) -> S.Stmt:
    """Parse a statement block in the printer's format."""
    p = _Parser(text)
    out = p.parse_stmts()
    if p.t.peek() is not None:
        raise InvalidProgram(f"trailing tokens: {p.t.toks[p.t.pos:]}")
    return out


def parse_program(text: str) -> S.Func:
    """Parse a full ``func name(params) -> rets { ... }`` dump."""
    header, _, body = text.partition("{")
    m = re.match(r"\s*func\s+([\w.]+)\((.*?)\)(?:\s*->\s*(.*?))?\s*$",
                 header)
    if not m:
        raise InvalidProgram("missing 'func' header")
    name = m.group(1)
    params = [p.strip() for p in m.group(2).split(",") if p.strip()]
    returns = [r.strip() for r in (m.group(3) or "").split(",")
               if r.strip()]
    body_text = body.rsplit("}", 1)[0]
    p = _Parser(body_text)
    stmt = p.parse_stmts()
    if p.t.peek() is not None:
        raise InvalidProgram(f"trailing tokens: {p.t.toks[p.t.pos:]}")
    # scalar params: loop/shape vars that are not tensor params
    from .functional import defined_tensors

    defs = defined_tensors(stmt)
    tensor_params = [q for q in params if q in defs]
    scalar_params = [q for q in params if q not in defs]
    return S.Func(name, tensor_params, returns, stmt,
                  scalar_params=scalar_params)

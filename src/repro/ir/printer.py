"""Human-readable pretty printer for the IR.

The output format is stable and used by golden tests; it is also parseable
back by ``repro.ir.parser`` for round-trip testing.
"""

from __future__ import annotations

import math
import os

from . import expr as E
from . import stmt as S

# Higher binds tighter. Mirrors Python precedence for the operators we print
# infix; min/max/intrinsics print as calls and need no precedence.
_PREC = {
    E.LOr: 1,
    E.LAnd: 2,
    E.LT: 4,
    E.LE: 4,
    E.GT: 4,
    E.GE: 4,
    E.EQ: 4,
    E.NE: 4,
    E.Add: 5,
    E.Sub: 5,
    E.Mul: 6,
    E.RealDiv: 6,
    E.FloorDiv: 6,
    E.Mod: 6,
}


def print_expr(e: E.Expr, prec: int = 0) -> str:
    """Render an expression; parenthesised per ``prec`` context."""
    if isinstance(e, E.IntConst):
        return str(e.val)
    if isinstance(e, E.BoolConst):
        return "true" if e.val else "false"
    if isinstance(e, E.FloatConst):
        if math.isinf(e.val):
            return "inf" if e.val > 0 else "-inf"
        return repr(e.val)
    if isinstance(e, E.Var):
        return e.name
    if isinstance(e, E.Load):
        if not e.indices:
            return e.var
        return f"{e.var}[{', '.join(print_expr(i) for i in e.indices)}]"
    if isinstance(e, (E.Min, E.Max)):
        name = "min" if isinstance(e, E.Min) else "max"
        return f"{name}({print_expr(e.lhs)}, {print_expr(e.rhs)})"
    if isinstance(e, E.BinOp):
        p = _PREC[type(e)]
        text = (f"{print_expr(e.lhs, p)} {e.op_name} "
                f"{print_expr(e.rhs, p + 1)}")
        return f"({text})" if p < prec else text
    if isinstance(e, E.LNot):
        return f"!{print_expr(e.operand, 7)}"
    if isinstance(e, E.IfExpr):
        text = (f"{print_expr(e.cond, 1)} ? {print_expr(e.then_case, 1)}"
                f" : {print_expr(e.else_case, 1)}")
        return f"({text})" if prec > 0 else text
    if isinstance(e, E.Cast):
        return f"{e.dtype}({print_expr(e.operand)})"
    if isinstance(e, E.Intrinsic):
        return f"{e.name}({', '.join(print_expr(a) for a in e.args)})"
    if isinstance(e, E.AnyExpr):
        return "<any>"
    raise TypeError(f"cannot print {type(e).__name__}")  # pragma: no cover


def _label_prefix(s: S.Stmt) -> str:
    return f"{s.label}: " if s.label else ""


def print_ast(s: S.Stmt, indent: int = 0, show_ids: bool = False,
              show_spans: bool = False) -> str:
    """Render a statement tree as an indented block of pseudo-code.

    ``show_ids`` annotates every statement with its sid; ``show_spans``
    annotates statements with their captured Python source location.
    """
    pad = "  " * indent
    idc = f"  /* {s.sid} */" if show_ids else ""
    if show_spans and s.span is not None:
        fname, line = s.span
        idc += f"  /* {os.path.basename(fname)}:{line} */"
    lp = _label_prefix(s)

    if isinstance(s, S.StmtSeq):
        if not s.stmts:
            return f"{pad}{lp}{{}}{idc}\n"
        return "".join(print_ast(c, indent, show_ids, show_spans) for c in s.stmts)
    if isinstance(s, S.VarDef):
        shape = ", ".join(print_expr(d) for d in s.shape)
        pin = " /*pinned*/" if s.pinned else ""
        head = (f"{pad}{lp}@{s.atype} {s.name}: {s.dtype}[{shape}]"
                f" @{s.mtype}{pin} {{{idc}\n")
        return head + print_ast(s.body, indent + 1, show_ids, show_spans) + f"{pad}}}\n"
    if isinstance(s, S.For):
        props = []
        if s.property.parallel:
            props.append(f" /*parallel={s.property.parallel}*/")
        if s.property.unroll:
            props.append(" /*unroll*/")
        if s.property.vectorize:
            props.append(" /*vectorize*/")
        if s.property.no_deps:
            props.append(f" /*no_deps={','.join(s.property.no_deps)}*/")
        if s.property.prefer_libs:
            props.append(" /*prefer_libs*/")
        head = (f"{pad}{lp}for {s.iter_var} in "
                f"{print_expr(s.begin)}:{print_expr(s.end)}"
                f"{''.join(props)} {{{idc}\n")
        return head + print_ast(s.body, indent + 1, show_ids, show_spans) + f"{pad}}}\n"
    if isinstance(s, S.If):
        out = (f"{pad}{lp}if {print_expr(s.cond)} {{{idc}\n" +
               print_ast(s.then_case, indent + 1, show_ids, show_spans) + f"{pad}}}")
        if s.else_case is not None:
            out += " else {\n" + print_ast(s.else_case, indent + 1,
                                           show_ids, show_spans) + f"{pad}}}"
        return out + "\n"
    if isinstance(s, S.Store):
        target = s.var
        if s.indices:
            target += f"[{', '.join(print_expr(i) for i in s.indices)}]"
        return f"{pad}{lp}{target} = {print_expr(s.expr)}{idc}\n"
    if isinstance(s, S.ReduceTo):
        target = s.var
        if s.indices:
            target += f"[{', '.join(print_expr(i) for i in s.indices)}]"
        at = " /*atomic*/" if s.atomic else ""
        return f"{pad}{lp}{target} {s.op}= {print_expr(s.expr)}{at}{idc}\n"
    if isinstance(s, S.Eval):
        return f"{pad}{lp}eval {print_expr(s.expr)}{idc}\n"
    if isinstance(s, S.Assert):
        return (f"{pad}{lp}assert {print_expr(s.cond)} {{{idc}\n" +
                print_ast(s.body, indent + 1, show_ids, show_spans) + f"{pad}}}\n")
    if isinstance(s, S.Alloc):
        return f"{pad}alloc {s.var}{idc}\n"
    if isinstance(s, S.Free):
        return f"{pad}free {s.var}{idc}\n"
    if isinstance(s, S.LibCall):
        at = ""
        if s.attrs:
            # scalar attrs only (bool/int/float/str); JSON keeps the
            # encoding unambiguous so the parser can round-trip them
            import json

            at = " /*attrs " + json.dumps(
                {k: s.attrs[k] for k in sorted(s.attrs)},
                sort_keys=True) + "*/"
        return (f"{pad}{lp}lib.{s.kind}({', '.join(s.outs)} <- "
                f"{', '.join(s.args)}){at}{idc}\n")
    if isinstance(s, S.Any):
        return f"{pad}<any>\n"
    raise TypeError(f"cannot print {type(s).__name__}")  # pragma: no cover


def dump(node, show_ids: bool = False, show_spans: bool = False) -> str:
    """Render a :class:`Func`, statement or expression to text."""
    if isinstance(node, S.Func):
        params = list(node.params) + list(node.scalar_params)
        header = f"func {node.name}({', '.join(params)})"
        if node.returns:
            header += f" -> {', '.join(node.returns)}"
        return header + " {\n" + \
            print_ast(node.body, 1, show_ids, show_spans) + "}\n"
    if isinstance(node, S.Stmt):
        return print_ast(node, 0, show_ids, show_spans)
    return print_expr(node)

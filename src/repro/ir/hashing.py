"""Stable structural hashing of IR trees.

The compile-path caches (the build cache in ``repro.runtime.driver``, the
lowering memo in ``repro.passes`` and the incremental dependence analysis in
``repro.analysis.deps``) all need a cheap, *content-addressed* identity for
IR subtrees: two trees that would compile to the same artifact must hash
equal, and any semantic difference must change the hash.

Two flavours are provided:

- ``include_sids=False`` (the default): statement ids are ignored, so two
  structurally identical programs staged independently hash equal. This is
  the right key for caching *compilation outputs* (generated code does not
  depend on sids).
- ``include_sids=True``: statement identity participates, so the hash also
  distinguishes trees that only differ in which statements schedules can
  address. This is the right key for caching *schedule-facing* artifacts
  (lowered functions whose sids later transformations target).

Hashes are computed in one linear walk — orders of magnitude cheaper than
the passes and polyhedral queries they guard.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from . import expr as E
from . import stmt as S


def expr_fingerprint(e: E.Expr):
    """A hashable tuple uniquely identifying an expression tree."""
    return e.key()


def _prop_fingerprint(p: S.ForProperty):
    return (p.parallel, p.unroll, p.vectorize, tuple(p.no_deps),
            p.prefer_libs)


def _data_fingerprint(data):
    """Fingerprint for VarDef.init_data (a NumPy array or None)."""
    if data is None:
        return None
    try:
        import numpy as np

        arr = np.asarray(data)
        digest = hashlib.blake2b(arr.tobytes(), digest_size=8).hexdigest()
        return (tuple(arr.shape), arr.dtype.str, digest)
    except Exception:  # pragma: no cover - exotic captured payloads
        return repr(data)


def stmt_fingerprint(s: S.Stmt, include_sids: bool = False,
                     sid_map: Optional[dict] = None):
    """A hashable tuple uniquely identifying a statement tree.

    ``sid_map``, when given with ``include_sids``, translates statement
    ids before they enter the fingerprint. The on-disk compile cache uses
    this to hash trees under *canonical* (preorder-renumbered) ids, so
    two processes that staged the same program with different absolute
    sid values produce the same key (see ``repro.cache.serial``).
    """
    def fp(c, _inc=include_sids):
        return stmt_fingerprint(c, _inc, sid_map)

    if include_sids:
        sid = s.sid if sid_map is None else sid_map.get(s.sid, s.sid)
    else:
        sid = None
    t = type(s).__name__
    if isinstance(s, S.StmtSeq):
        return (t, sid, tuple(fp(c, include_sids) for c in s.stmts))
    if isinstance(s, S.VarDef):
        return (t, sid, s.name, tuple(d.key() for d in s.shape),
                s.dtype.value, s.atype.value, s.mtype.value, s.pinned,
                _data_fingerprint(s.init_data), fp(s.body, include_sids))
    if isinstance(s, S.For):
        return (t, sid, s.iter_var, s.begin.key(), s.end.key(),
                _prop_fingerprint(s.property), fp(s.body, include_sids))
    if isinstance(s, S.If):
        return (t, sid, s.cond.key(), fp(s.then_case, include_sids),
                None if s.else_case is None else fp(s.else_case,
                                                    include_sids))
    if isinstance(s, S.Store):
        return (t, sid, s.var, tuple(i.key() for i in s.indices),
                s.expr.key())
    if isinstance(s, S.ReduceTo):
        return (t, sid, s.var, tuple(i.key() for i in s.indices), s.op,
                s.expr.key(), s.atomic)
    if isinstance(s, S.Eval):
        return (t, sid, s.expr.key())
    if isinstance(s, S.Assert):
        return (t, sid, s.cond.key(), fp(s.body, include_sids))
    if isinstance(s, (S.Alloc, S.Free)):
        return (t, sid, s.var)
    if isinstance(s, S.LibCall):
        return (t, sid, s.kind, s.outs, s.args,
                tuple(sorted((k, repr(v)) for k, v in s.attrs.items())))
    if isinstance(s, S.Any):
        return (t, sid)
    raise TypeError(f"cannot fingerprint {t}")  # pragma: no cover


def func_fingerprint(func: S.Func, include_sids: bool = False,
                     sid_map: Optional[dict] = None):
    """A hashable tuple uniquely identifying a Func."""
    return ("Func", func.name, tuple(func.params),
            tuple(func.scalar_params), tuple(func.returns),
            stmt_fingerprint(func.body, include_sids, sid_map))


def fingerprint(node, include_sids: bool = False,
                sid_map: Optional[dict] = None):
    """Fingerprint any IR node (Func, Stmt or Expr)."""
    if isinstance(node, S.Func):
        return func_fingerprint(node, include_sids, sid_map)
    if isinstance(node, S.Stmt):
        return stmt_fingerprint(node, include_sids, sid_map)
    if isinstance(node, E.Expr):
        return expr_fingerprint(node)
    raise TypeError(f"cannot fingerprint {type(node).__name__}")


def struct_hash(node, include_sids: bool = False,
                sid_map: Optional[dict] = None) -> str:
    """A short stable content hash (hex digest) of any IR node."""
    fp = fingerprint(node, include_sids, sid_map)
    return hashlib.blake2b(repr(fp).encode(), digest_size=16).hexdigest()

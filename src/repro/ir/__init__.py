"""The FreeTensor-style intermediate representation.

A program is a :class:`Func` whose body is a stack-scoped statement tree.
See ``repro.ir.expr`` and ``repro.ir.stmt`` for the node classes, and
``repro.ir.visitor`` for traversal infrastructure.
"""

from .dtype import (AccessType, DataType, MemType, from_numpy_dtype,
                    join_dtype)
from .expr import (Add, AnyExpr, BinOp, BoolConst, Cast, CmpOp, Const, EQ,
                   Expr, FloatConst, FloorDiv, GE, GT, IfExpr, IntConst,
                   Intrinsic, INTRINSICS, LAnd, LE, LNot, LOr, LT, Load, Max,
                   Min, Mod, Mul, NE, RealDiv, Sub, Var, all_loaded_tensors,
                   all_reads, all_vars, makeAdd, makeCast, makeCmp,
                   makeFloorDiv, makeIfExpr, makeIntrinsic, makeLAnd,
                   makeLNot, makeLOr, makeMax, makeMin, makeMod, makeMul,
                   makeRealDiv, makeSub, same_expr, wrap, wrap_like)
from .functional import (collect_stmts, count_nodes, defined_tensors,
                         find_stmt, fresh_copy, fresh_name, match, reads_of,
                         rename_tensor, substitute, used_names, writes_of)
from .hashing import (expr_fingerprint, fingerprint, func_fingerprint,
                      stmt_fingerprint, struct_hash)
from .printer import dump, print_ast, print_expr
from .stmt import (Alloc, Any, Assert, Eval, For, ForProperty, Free, Func, If,
                   LibCall, REDUCE_OPS, ReduceTo, Stmt, StmtSeq, Store,
                   VarDef, bump_sid_counter, fresh_sid, seq)
from .visitor import ExprMutator, Mutator, Visitor, map_exprs

__all__ = [
    # dtype
    "AccessType", "DataType", "MemType", "from_numpy_dtype", "join_dtype",
    # expr
    "Add", "AnyExpr", "BinOp", "BoolConst", "Cast", "CmpOp", "Const", "EQ",
    "Expr", "FloatConst", "FloorDiv", "GE", "GT", "IfExpr", "IntConst",
    "Intrinsic", "INTRINSICS", "LAnd", "LE", "LNot", "LOr", "LT", "Load",
    "Max", "Min", "Mod", "Mul", "NE", "RealDiv", "Sub", "Var",
    "all_loaded_tensors", "all_reads", "all_vars", "makeAdd", "makeCast",
    "makeCmp", "makeFloorDiv", "makeIfExpr", "makeIntrinsic", "makeLAnd",
    "makeLNot", "makeLOr", "makeMax", "makeMin", "makeMod", "makeMul",
    "makeRealDiv", "makeSub", "same_expr", "wrap", "wrap_like",
    # functional
    "collect_stmts", "count_nodes", "defined_tensors", "find_stmt",
    "fresh_copy", "fresh_name", "match", "reads_of", "rename_tensor",
    "substitute", "used_names", "writes_of",
    # hashing
    "expr_fingerprint", "fingerprint", "func_fingerprint",
    "stmt_fingerprint", "struct_hash",
    # printer
    "dump", "print_ast", "print_expr",
    # stmt
    "Alloc", "Any", "Assert", "Eval", "For", "ForProperty", "Free", "Func",
    "If", "LibCall", "REDUCE_OPS", "ReduceTo", "Stmt", "StmtSeq", "Store",
    "VarDef", "bump_sid_counter", "fresh_sid", "seq",
    # visitor
    "ExprMutator", "Mutator", "Visitor", "map_exprs",
]

"""Functional helpers over IR trees: substitution, renaming, matching,
collection, and deep copies with fresh statement identities.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from . import expr as E
from . import stmt as S
from .visitor import Mutator, map_exprs


def substitute(node, mapping: Dict[str, E.Expr]):
    """Replace :class:`Var` occurrences by name with given expressions."""
    if not mapping:
        return node

    def rewrite(e):
        if isinstance(e, E.Var) and e.name in mapping:
            return mapping[e.name]
        return None

    return map_exprs(node, rewrite)


def rename_tensor(node, old: str, new: str):
    """Rename a tensor in loads, stores, reductions and its VarDef."""

    class Renamer(Mutator):

        def mutate_Load(self, e):
            idx = [self.mutate_expr(i) for i in e.indices]
            return E.Load(new if e.var == old else e.var, idx, e.dtype)

        def mutate_VarDef(self, s):
            body = self.mutate_stmt(s.body)
            name = new if s.name == old else s.name
            out = S.VarDef(name, [self.mutate_expr(d) for d in s.shape],
                           s.dtype, s.atype, s.mtype, body, s.pinned)
            out.sid, out.label, out.init_data = s.sid, s.label, s.init_data
            return out

        def mutate_Store(self, s):
            out = S.Store(new if s.var == old else s.var,
                          [self.mutate_expr(i) for i in s.indices],
                          self.mutate_expr(s.expr))
            out.sid, out.label = s.sid, s.label
            return out

        def mutate_ReduceTo(self, s):
            out = S.ReduceTo(new if s.var == old else s.var,
                             [self.mutate_expr(i) for i in s.indices], s.op,
                             self.mutate_expr(s.expr), s.atomic)
            out.sid, out.label = s.sid, s.label
            return out

        def mutate_LibCall(self, s):
            ren = lambda n: new if n == old else n
            out = S.LibCall(s.kind, [ren(n) for n in s.outs],
                            [ren(n) for n in s.args], s.attrs)
            out.sid, out.label = s.sid, s.label
            return out

    return Renamer()(node)


def fresh_copy(stmt: S.Stmt) -> S.Stmt:
    """Deep-copy a statement tree, assigning fresh sids (labels dropped).

    Used by ``unroll``/``blend``-style transformations that duplicate code:
    the duplicates must not alias the original statements' identities.
    """

    class Copier(Mutator):

        def mutate_stmt(self, s):
            span = s.span
            out = super().generic_mutate_stmt(s)
            out.sid = S.fresh_sid()
            out.label = None
            if span is not None:
                out.span = span  # the copy still comes from the same line
            return out

    return Copier()(stmt)


def collect_stmts(node, pred: Callable[[S.Stmt], bool]) -> List[S.Stmt]:
    """All statements in pre-order satisfying ``pred``."""
    if isinstance(node, S.Func):
        node = node.body
    found: List[S.Stmt] = []

    def walk(s: S.Stmt):
        if pred(s):
            found.append(s)
        for c in s.children_stmts():
            walk(c)

    walk(node)
    return found


def find_stmt(node, sid_or_label: str) -> S.Stmt:
    """Find the unique statement with the given sid or label."""
    hits = collect_stmts(
        node, lambda s: s.sid == sid_or_label or s.label == sid_or_label)
    if not hits:
        raise KeyError(f"no statement {sid_or_label!r}")
    if len(hits) > 1:
        raise KeyError(f"statement selector {sid_or_label!r} is ambiguous "
                       f"({len(hits)} matches)")
    return hits[0]


def defined_tensors(node) -> Dict[str, S.VarDef]:
    """Map every tensor name to its defining VarDef."""
    return {d.name: d for d in collect_stmts(
        node, lambda s: isinstance(s, S.VarDef))}


def reads_of(node) -> Dict[str, List[E.Load]]:
    """All Load nodes in a statement tree, grouped by tensor name."""
    if isinstance(node, S.Func):
        node = node.body
    out: Dict[str, List[E.Load]] = {}

    def walk_stmt(s: S.Stmt):
        for e in s.child_exprs():
            walk_expr(e)
        for c in s.children_stmts():
            walk_stmt(c)

    def walk_expr(e: E.Expr):
        if isinstance(e, E.Load):
            out.setdefault(e.var, []).append(e)
        for c in e.children():
            walk_expr(c)

    walk_stmt(node)
    return out


def writes_of(node) -> Dict[str, List[S.Stmt]]:
    """All Store/ReduceTo statements, grouped by tensor name."""
    out: Dict[str, List[S.Stmt]] = {}
    for s in collect_stmts(node,
                           lambda s: isinstance(s, (S.Store, S.ReduceTo))):
        out.setdefault(s.var, []).append(s)
    for s in collect_stmts(node, lambda s: isinstance(s, S.LibCall)):
        for name in s.outs:
            out.setdefault(name, []).append(s)
    return out


def used_names(node) -> set:
    """Names of all tensors and scalar vars referenced anywhere."""
    names: set = set()

    def expr_names(e: E.Expr):
        if isinstance(e, E.Var):
            names.add(e.name)
        if isinstance(e, E.Load):
            names.add(e.var)
        for c in e.children():
            expr_names(c)

    def walk(s: S.Stmt):
        if isinstance(s, S.VarDef):
            names.add(s.name)
        if isinstance(s, S.For):
            names.add(s.iter_var)
        if isinstance(s, (S.Store, S.ReduceTo, S.Alloc, S.Free)):
            names.add(s.var)
        if isinstance(s, S.LibCall):
            names.update(s.outs)
            names.update(s.args)
        for e in s.child_exprs():
            expr_names(e)
        for c in s.children_stmts():
            walk(c)

    walk(node.body if isinstance(node, S.Func) else node)
    return names


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """A name derived from ``base`` that is not in ``taken``."""
    taken = set(taken)
    if base not in taken:
        return base
    i = 1
    while f"{base}.{i}" in taken:
        i += 1
    return f"{base}.{i}"


def count_nodes(node) -> int:
    """Total number of statements and expressions in a tree."""
    total = 0

    def walk_expr(e):
        nonlocal total
        total += 1
        for c in e.children():
            walk_expr(c)

    def walk(s):
        nonlocal total
        total += 1
        for e in s.child_exprs():
            walk_expr(e)
        for c in s.children_stmts():
            walk(c)

    walk(node.body if isinstance(node, S.Func) else node)
    return total


# ---------------------------------------------------------------------------
# Structural matching (with Any/AnyExpr wildcards) for tests
# ---------------------------------------------------------------------------


def match(pattern, node) -> bool:
    """Whether ``node`` matches ``pattern`` structurally.

    :class:`repro.ir.stmt.Any` in the pattern matches any statement;
    :class:`repro.ir.expr.AnyExpr` matches any expression. Statement ids and
    labels are ignored. Iterator names must match exactly.
    """
    if isinstance(pattern, S.Func) and isinstance(node, S.Func):
        return match(pattern.body, node.body)
    if isinstance(pattern, E.Expr) or isinstance(node, E.Expr):
        if not (isinstance(pattern, E.Expr) and isinstance(node, E.Expr)):
            return False
        return E.same_expr(pattern, node)
    if isinstance(pattern, S.Any):
        return True
    if type(pattern) is not type(node):
        # A one-element StmtSeq is equivalent to its element.
        if isinstance(pattern, S.StmtSeq) and len(pattern.stmts) == 1:
            return match(pattern.stmts[0], node)
        if isinstance(node, S.StmtSeq) and len(node.stmts) == 1:
            return match(pattern, node.stmts[0])
        return False
    if isinstance(pattern, S.StmtSeq):
        return (len(pattern.stmts) == len(node.stmts) and all(
            match(p, n) for p, n in zip(pattern.stmts, node.stmts)))
    if isinstance(pattern, S.VarDef):
        return (pattern.name == node.name and pattern.dtype is node.dtype
                and len(pattern.shape) == len(node.shape) and all(
                    E.same_expr(p, n)
                    for p, n in zip(pattern.shape, node.shape))
                and match(pattern.body, node.body))
    if isinstance(pattern, S.For):
        return (pattern.iter_var == node.iter_var
                and E.same_expr(pattern.begin, node.begin)
                and E.same_expr(pattern.end, node.end)
                and match(pattern.body, node.body))
    if isinstance(pattern, S.If):
        if not E.same_expr(pattern.cond, node.cond):
            return False
        if not match(pattern.then_case, node.then_case):
            return False
        if (pattern.else_case is None) != (node.else_case is None):
            return False
        return (pattern.else_case is None
                or match(pattern.else_case, node.else_case))
    if isinstance(pattern, S.Store):
        return (pattern.var == node.var
                and len(pattern.indices) == len(node.indices) and all(
                    E.same_expr(p, n)
                    for p, n in zip(pattern.indices, node.indices))
                and E.same_expr(pattern.expr, node.expr))
    if isinstance(pattern, S.ReduceTo):
        return (pattern.var == node.var and pattern.op == node.op
                and len(pattern.indices) == len(node.indices) and all(
                    E.same_expr(p, n)
                    for p, n in zip(pattern.indices, node.indices))
                and E.same_expr(pattern.expr, node.expr))
    if isinstance(pattern, S.Eval):
        return E.same_expr(pattern.expr, node.expr)
    if isinstance(pattern, S.Assert):
        return (E.same_expr(pattern.cond, node.cond)
                and match(pattern.body, node.body))
    if isinstance(pattern, S.LibCall):
        return (pattern.kind == node.kind and pattern.outs == node.outs
                and pattern.args == node.args)
    if isinstance(pattern, (S.Alloc, S.Free)):
        return pattern.var == node.var
    return False  # pragma: no cover - exhaustive above

"""Scalar data types, memory types and access types of the IR.

These mirror FreeTensor's tensor meta-data (paper section 3.1): every tensor
has an element data type (``DataType``), lives in some level of the memory
hierarchy (``MemType``), and plays a role in its defining function
(``AccessType``).
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Element type of a tensor (scalars are 0-D tensors)."""

    BOOL = "bool"
    INT32 = "i32"
    INT64 = "i64"
    FLOAT32 = "f32"
    FLOAT64 = "f64"

    # ------------------------------------------------------------------
    @staticmethod
    def parse(spec: "DataType | str") -> "DataType":
        """Parse a dtype from its string spelling (``"f32"``, ``"i64"``...)."""
        if isinstance(spec, DataType):
            return spec
        try:
            return _DTYPE_BY_NAME[str(spec)]
        except KeyError:
            raise ValueError(f"unknown data type: {spec!r}") from None

    # ------------------------------------------------------------------
    @property
    def is_float(self) -> bool:
        return self in (DataType.FLOAT32, DataType.FLOAT64)

    @property
    def is_int(self) -> bool:
        return self in (DataType.INT32, DataType.INT64)

    @property
    def is_bool(self) -> bool:
        return self is DataType.BOOL

    @property
    def size_bytes(self) -> int:
        """Size of one element in bytes."""
        return _SIZES[self]

    def to_numpy(self) -> np.dtype:
        """The equivalent NumPy dtype."""
        return _NUMPY[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_DTYPE_BY_NAME = {d.value: d for d in DataType}
_DTYPE_BY_NAME.update({
    "float32": DataType.FLOAT32,
    "float64": DataType.FLOAT64,
    "int32": DataType.INT32,
    "int64": DataType.INT64,
})

_SIZES = {
    DataType.BOOL: 1,
    DataType.INT32: 4,
    DataType.INT64: 8,
    DataType.FLOAT32: 4,
    DataType.FLOAT64: 8,
}

_NUMPY = {
    DataType.BOOL: np.dtype(np.bool_),
    DataType.INT32: np.dtype(np.int32),
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT32: np.dtype(np.float32),
    DataType.FLOAT64: np.dtype(np.float64),
}

# Rank used when joining dtypes of binary expressions: the result takes the
# higher-ranked operand's type (bool < i32 < i64 < f32 < f64).
_RANK = {
    DataType.BOOL: 0,
    DataType.INT32: 1,
    DataType.INT64: 2,
    DataType.FLOAT32: 3,
    DataType.FLOAT64: 4,
}


def join_dtype(a: DataType, b: DataType) -> DataType:
    """Common dtype of a binary expression over operands of types a and b."""
    return a if _RANK[a] >= _RANK[b] else b


def from_numpy_dtype(np_dtype) -> DataType:
    """Map a NumPy dtype back to a :class:`DataType`."""
    np_dtype = np.dtype(np_dtype)
    for ours, theirs in _NUMPY.items():
        if theirs == np_dtype:
            return ours
    raise ValueError(f"unsupported numpy dtype: {np_dtype}")


class MemType(enum.Enum):
    """Where a tensor is stored (paper: ``mtype``).

    ``BYVALUE`` is used for scalars passed by value (e.g. shape variables).
    GPU memory levels exist so schedules like ``set_mtype`` and the simulated
    GPU backend can model the paper's memory-hierarchy optimizations.
    """

    BYVALUE = "byvalue"
    CPU = "cpu"
    CPU_HEAP = "cpu/heap"
    GPU_GLOBAL = "gpu/global"
    GPU_SHARED = "gpu/shared"
    GPU_LOCAL = "gpu/local"

    @staticmethod
    def parse(spec: "MemType | str") -> "MemType":
        if isinstance(spec, MemType):
            return spec
        spec = str(spec)
        if spec == "gpu":  # convenience alias used throughout the paper
            return MemType.GPU_GLOBAL
        for m in MemType:
            if m.value == spec:
                return m
        raise ValueError(f"unknown memory type: {spec!r}")

    @property
    def on_gpu(self) -> bool:
        return self in (MemType.GPU_GLOBAL, MemType.GPU_SHARED,
                        MemType.GPU_LOCAL)

    @property
    def is_global(self) -> bool:
        """Whether the memory is visible to all threads of its device."""
        return self in (MemType.CPU, MemType.CPU_HEAP, MemType.GPU_GLOBAL)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AccessType(enum.Enum):
    """Role of a tensor in its defining function."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    CACHE = "cache"  # a local/intermediate tensor

    @staticmethod
    def parse(spec: "AccessType | str") -> "AccessType":
        if isinstance(spec, AccessType):
            return spec
        for a in AccessType:
            if a.value == str(spec):
                return a
        raise ValueError(f"unknown access type: {spec!r}")

    @property
    def is_written(self) -> bool:
        return self in (AccessType.OUTPUT, AccessType.INOUT, AccessType.CACHE)

    @property
    def is_input(self) -> bool:
        return self in (AccessType.INPUT, AccessType.INOUT)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

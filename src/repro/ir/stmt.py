"""Statement nodes of the FreeTensor IR.

The IR is a *stack-scoped* AST (paper section 4): every tensor is introduced
by a :class:`VarDef` node and is alive only inside that node's sub-tree.
This guarantees transformations never split an allocation from its free, and
lets dependence analysis project away false dependences on tensors whose
lifetime is nested under the loops being transformed (paper Figure 12(d)).

Every statement carries a unique ``sid`` and an optional user ``label``;
schedules address statements through either (see ``repro.schedule``).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple

from .dtype import AccessType, DataType, MemType
from .expr import Expr, IntConst, wrap

_sid_counter = itertools.count(1)


def fresh_sid() -> str:
    """Return a fresh statement id (unique within a process)."""
    return f"#{next(_sid_counter)}"


def bump_sid_counter(past: int):
    """Ensure future :func:`fresh_sid` values are numbered beyond
    ``past``.

    Loading IR serialized by another process (``repro.cache.serial``)
    can introduce sids minted by that process's counter; bumping keeps
    this process's counter from ever re-minting one of them.
    """
    global _sid_counter
    nxt = next(_sid_counter)
    _sid_counter = itertools.count(max(nxt, int(past) + 1))


#: Python source spans by statement id: sid -> (filename, line). Keyed by
#: sid rather than stored on the node so spans survive every transformation
#: that preserves statement identity (``Mutator._copy_identity`` and the
#: schedules' manual sid copies) without each rewrite threading the span
#: through. Content hashing (``ir.hashing``) never reads spans, so the
#: compile-path caches are unaffected.
_SPANS: Dict[str, Tuple[str, int]] = {}


def clear_spans():
    """Drop all recorded source spans (testing aid)."""
    _SPANS.clear()


class Stmt:
    """Base class of all IR statements."""

    __slots__ = ("sid", "label")

    def __init__(self, label: Optional[str] = None):
        self.sid = fresh_sid()
        self.label = label

    @property
    def span(self) -> Optional[Tuple[str, int]]:
        """Python source location ``(filename, line)``, or None.

        Captured by the frontend while staging; follows the statement's
        ``sid`` through schedules and lowering passes.
        """
        return _SPANS.get(self.sid)

    @span.setter
    def span(self, value: Optional[Tuple[str, int]]):
        if value is None:
            _SPANS.pop(self.sid, None)
        else:
            _SPANS[self.sid] = (str(value[0]), int(value[1]))

    def children_stmts(self) -> Sequence["Stmt"]:
        """Direct sub-statements."""
        return ()

    def child_exprs(self) -> Sequence[Expr]:
        """Direct sub-expressions (not descending into sub-statements)."""
        return ()

    def __repr__(self) -> str:
        from .printer import print_ast

        return print_ast(self)


class StmtSeq(Stmt):
    """An ordered sequence of statements."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Iterable[Stmt], label: Optional[str] = None):
        super().__init__(label)
        self.stmts = list(stmts)

    def children_stmts(self):
        return self.stmts


class VarDef(Stmt):
    """Defines tensor ``name`` with ``shape`` for the scope of ``body``.

    This is the paper's *TensorDef* node. ``shape`` entries are integer
    expressions (possibly symbolic in by-value parameters and enclosing
    iterators). A 0-D shape denotes a scalar.
    """

    __slots__ = ("name", "shape", "dtype", "atype", "mtype", "body", "pinned",
                 "init_data")

    def __init__(self,
                 name: str,
                 shape: Iterable,
                 dtype: DataType | str,
                 atype: AccessType | str,
                 mtype: MemType | str,
                 body: Stmt,
                 pinned: bool = False,
                 label: Optional[str] = None):
        super().__init__(label)
        self.name = name
        self.shape = tuple(wrap(s) for s in shape)
        self.dtype = DataType.parse(dtype)
        self.atype = AccessType.parse(atype)
        self.mtype = MemType.parse(mtype)
        self.body = body
        self.pinned = pinned  # pinned tensors resist shrink/layout passes
        #: compile-time constant contents (from frontend capture()), or None
        self.init_data = None

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def children_stmts(self):
        return (self.body,)

    def child_exprs(self):
        return self.shape


class ForProperty:
    """Scheduling annotations attached to a :class:`For` loop."""

    __slots__ = ("parallel", "unroll", "vectorize", "no_deps", "prefer_libs")

    def __init__(self,
                 parallel: Optional[str] = None,
                 unroll: bool = False,
                 vectorize: bool = False,
                 no_deps: Iterable[str] = (),
                 prefer_libs: bool = False):
        #: None, "openmp", "cuda.blockIdx.x/y/z", "cuda.threadIdx.x/y/z"
        self.parallel = parallel
        self.unroll = unroll
        self.vectorize = vectorize
        #: tensor names the user asserts carry no loop-carried dependence
        self.no_deps = tuple(no_deps)
        self.prefer_libs = prefer_libs

    def clone(self) -> "ForProperty":
        return ForProperty(self.parallel, self.unroll, self.vectorize,
                           self.no_deps, self.prefer_libs)

    def __repr__(self):  # pragma: no cover - debugging aid
        parts = []
        if self.parallel:
            parts.append(f"parallel={self.parallel}")
        if self.unroll:
            parts.append("unroll")
        if self.vectorize:
            parts.append("vectorize")
        if self.no_deps:
            parts.append(f"no_deps={list(self.no_deps)}")
        return f"ForProperty({', '.join(parts)})"


class For(Stmt):
    """``for iter_var in [begin, end)`` with unit step.

    Non-unit steps are normalised by the frontend (the iterator is rescaled),
    which keeps the polyhedral model simple and exact.
    """

    __slots__ = ("iter_var", "begin", "end", "body", "property")

    def __init__(self,
                 iter_var: str,
                 begin,
                 end,
                 body: Stmt,
                 property: Optional[ForProperty] = None,
                 label: Optional[str] = None):
        super().__init__(label)
        self.iter_var = iter_var
        self.begin = wrap(begin)
        self.end = wrap(end)
        self.body = body
        self.property = property if property is not None else ForProperty()

    @property
    def len(self) -> Expr:
        from .expr import makeSub

        return makeSub(self.end, self.begin)

    def children_stmts(self):
        return (self.body,)

    def child_exprs(self):
        return (self.begin, self.end)


class If(Stmt):
    """``if cond: then_case else: else_case`` (else optional)."""

    __slots__ = ("cond", "then_case", "else_case")

    def __init__(self,
                 cond,
                 then_case: Stmt,
                 else_case: Optional[Stmt] = None,
                 label: Optional[str] = None):
        super().__init__(label)
        self.cond = wrap(cond)
        self.then_case = then_case
        self.else_case = else_case

    def children_stmts(self):
        if self.else_case is not None:
            return (self.then_case, self.else_case)
        return (self.then_case,)

    def child_exprs(self):
        return (self.cond,)


class Store(Stmt):
    """``tensor[indices] = expr``."""

    __slots__ = ("var", "indices", "expr")

    def __init__(self,
                 var: str,
                 indices: Iterable,
                 expr,
                 label: Optional[str] = None):
        super().__init__(label)
        self.var = var
        self.indices = tuple(wrap(i) for i in indices)
        self.expr = wrap(expr)

    def child_exprs(self):
        return (*self.indices, self.expr)


#: Reduction operators supported by :class:`ReduceTo`.
REDUCE_OPS = ("+", "*", "min", "max")


class ReduceTo(Stmt):
    """``tensor[indices] op= expr`` for a commutative/associative ``op``.

    The paper introduces this node so write-after-write dependences between
    reductions over the same location can be ignored during transformations
    (Figure 12(c)), and so parallel backends can lower it with parallel
    reduction algorithms or atomics (Figure 13(d)/(e)).
    """

    __slots__ = ("var", "indices", "op", "expr", "atomic")

    def __init__(self,
                 var: str,
                 indices: Iterable,
                 op: str,
                 expr,
                 atomic: bool = False,
                 label: Optional[str] = None):
        super().__init__(label)
        if op not in REDUCE_OPS:
            raise ValueError(f"unknown reduction op: {op!r}")
        self.var = var
        self.indices = tuple(wrap(i) for i in indices)
        self.op = op
        self.expr = wrap(expr)
        self.atomic = atomic

    def child_exprs(self):
        return (*self.indices, self.expr)


class Eval(Stmt):
    """Evaluate an expression for effect (used for extern/lib calls)."""

    __slots__ = ("expr",)

    def __init__(self, expr, label: Optional[str] = None):
        super().__init__(label)
        self.expr = wrap(expr)

    def child_exprs(self):
        return (self.expr,)


class Assert(Stmt):
    """Assert ``cond`` holds for the scope of ``body``.

    Asserts communicate shape facts (e.g. "2N is even") to the simplifier
    and the polyhedral engine (paper section 3.3).
    """

    __slots__ = ("cond", "body")

    def __init__(self, cond, body: Stmt, label: Optional[str] = None):
        super().__init__(label)
        self.cond = wrap(cond)
        self.body = body

    def children_stmts(self):
        return (self.body,)

    def child_exprs(self):
        return (self.cond,)


class Alloc(Stmt):
    """Explicit allocation marker emitted by lowering for heap tensors."""

    __slots__ = ("var",)

    def __init__(self, var: str, label: Optional[str] = None):
        super().__init__(label)
        self.var = var


class Free(Stmt):
    """Explicit free marker paired with :class:`Alloc`."""

    __slots__ = ("var",)

    def __init__(self, var: str, label: Optional[str] = None):
        super().__init__(label)
        self.var = var


class LibCall(Stmt):
    """A call into a vendor library (``as_lib`` schedule, paper Table 1).

    ``kind`` identifies the routine (e.g. ``"matmul"``); ``args``/``outs``
    name tensors in scope. Backends map this to their native library: the
    NumPy backends call BLAS through NumPy, the C backend emits a call into
    a bundled C routine, and the simulated GPU accounts it as one kernel.
    """

    __slots__ = ("kind", "outs", "args", "attrs")

    def __init__(self,
                 kind: str,
                 outs: Sequence[str],
                 args: Sequence[str],
                 attrs: Optional[dict] = None,
                 label: Optional[str] = None):
        super().__init__(label)
        self.kind = kind
        self.outs = tuple(outs)
        self.args = tuple(args)
        self.attrs = dict(attrs or {})


class Any(Stmt):
    """Wildcard statement used only in pattern-matching tests."""

    __slots__ = ()


# ---------------------------------------------------------------------------


def seq(stmts: Iterable[Stmt]) -> Stmt:
    """Make a statement from a list, flattening trivial sequences."""
    flat: list[Stmt] = []
    for s in stmts:
        if isinstance(s, StmtSeq) and s.label is None:
            flat.extend(s.stmts)
        else:
            flat.append(s)
    if len(flat) == 1:
        return flat[0]
    return StmtSeq(flat)


class Func:
    """A compiled-unit: named parameters plus a statement body.

    ``params`` is the ordered list of parameter tensor names; each must be
    defined by a top-level chain of :class:`VarDef` nodes in ``body`` with an
    I/O access type. ``returns`` names output tensors that the driver should
    hand back to the caller.
    """

    __slots__ = ("name", "params", "scalar_params", "returns", "body")

    def __init__(self,
                 name: str,
                 params: Sequence[str],
                 returns: Sequence[str],
                 body: Stmt,
                 scalar_params: Sequence[str] = ()):
        self.name = name
        self.params = list(params)
        #: by-value integer parameters (shape variables etc.)
        self.scalar_params = list(scalar_params)
        self.returns = list(returns)
        self.body = body

    def interface_tensors(self) -> list:
        """All tensors crossing the function boundary: parameters plus
        returned tensors that are not already parameters, in order."""
        out = list(self.params)
        for r in self.returns:
            if r not in self.params:
                out.append(r)
        return out

    def __repr__(self) -> str:
        from .printer import dump

        return dump(self)

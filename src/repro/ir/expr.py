"""Expression nodes of the FreeTensor IR.

Expressions are immutable trees. Every node carries a ``dtype``. Python
operators are overloaded on :class:`Expr` so compiler code (and the DSL
frontend) can build IR with ordinary arithmetic syntax; construction applies
light constant folding so trivially-constant subtrees never appear in the IR.

Structural identity: two expressions compare equal (``==`` on non-Expr
context via :func:`same_expr`) iff their trees are identical. Because ``==``
on :class:`Expr` is overloaded to *build* an :class:`EQ` node, use
:func:`same_expr` / :meth:`Expr.key` for comparisons inside the compiler.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .dtype import DataType, join_dtype


class Expr:
    """Base class of all IR expressions."""

    __slots__ = ("dtype",)

    dtype: DataType

    # -- tree protocol -------------------------------------------------
    def children(self) -> Sequence["Expr"]:
        """Direct sub-expressions of this node."""
        return ()

    def key(self):
        """A hashable tuple uniquely identifying this tree's structure."""
        raise NotImplementedError

    # -- conveniences --------------------------------------------------
    def __repr__(self) -> str:
        from .printer import print_expr

        return print_expr(self)

    def __hash__(self):
        return hash(self.key())

    def __bool__(self):
        raise TypeError(
            "cannot convert a symbolic expression to a Python bool; "
            "this usually means a data-dependent condition leaked into "
            "host control flow (use it inside a @transform-ed function)")

    # -- arithmetic operators -------------------------------------------
    def __add__(self, other):
        return makeAdd(self, wrap(other))

    def __radd__(self, other):
        return makeAdd(wrap(other), self)

    def __sub__(self, other):
        return makeSub(self, wrap(other))

    def __rsub__(self, other):
        return makeSub(wrap(other), self)

    def __mul__(self, other):
        return makeMul(self, wrap(other))

    def __rmul__(self, other):
        return makeMul(wrap(other), self)

    def __truediv__(self, other):
        return makeRealDiv(self, wrap(other))

    def __rtruediv__(self, other):
        return makeRealDiv(wrap(other), self)

    def __floordiv__(self, other):
        return makeFloorDiv(self, wrap(other))

    def __rfloordiv__(self, other):
        return makeFloorDiv(wrap(other), self)

    def __mod__(self, other):
        return makeMod(self, wrap(other))

    def __rmod__(self, other):
        return makeMod(wrap(other), self)

    def __pow__(self, other):
        return makeIntrinsic("pow", [self, wrap(other)],
                             join_dtype(self.dtype, wrap(other).dtype))

    def __neg__(self):
        return makeSub(wrap_like(0, self.dtype), self)

    def __pos__(self):
        return self

    def __abs__(self):
        return makeIntrinsic("abs", [self], self.dtype)

    # -- comparisons -----------------------------------------------------
    def __lt__(self, other):
        return makeCmp(LT, self, wrap(other))

    def __le__(self, other):
        return makeCmp(LE, self, wrap(other))

    def __gt__(self, other):
        return makeCmp(GT, self, wrap(other))

    def __ge__(self, other):
        return makeCmp(GE, self, wrap(other))

    def __eq__(self, other):  # type: ignore[override]
        return makeCmp(EQ, self, wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return makeCmp(NE, self, wrap(other))

    # -- logical ----------------------------------------------------------
    def logical_and(self, other):
        return makeLAnd(self, wrap(other))

    def logical_or(self, other):
        return makeLOr(self, wrap(other))

    def logical_not(self):
        return makeLNot(self)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Const(Expr):
    """Base class for constants; ``val`` is a Python scalar."""

    __slots__ = ("val",)

    def key(self):
        return (type(self).__name__, self.val)


class IntConst(Const):
    """An integer constant."""

    __slots__ = ()

    def __init__(self, val: int, dtype: DataType = DataType.INT32):
        self.val = int(val)
        self.dtype = dtype


class FloatConst(Const):
    """A floating-point constant."""

    __slots__ = ()

    def __init__(self, val: float, dtype: DataType = DataType.FLOAT32):
        self.val = float(val)
        self.dtype = dtype


class BoolConst(Const):
    """A boolean constant."""

    __slots__ = ()

    def __init__(self, val: bool):
        self.val = bool(val)
        self.dtype = DataType.BOOL


class Var(Expr):
    """A scalar symbol: a loop iterator or a by-value parameter (e.g. a
    shape variable). Always an integer in this IR."""

    __slots__ = ("name",)

    def __init__(self, name: str, dtype: DataType = DataType.INT32):
        self.name = name
        self.dtype = dtype

    def key(self):
        return ("Var", self.name)


class Load(Expr):
    """Reading ``tensor[indices]``; scalars load with zero indices."""

    __slots__ = ("var", "indices")

    def __init__(self, var: str, indices: Iterable[Expr], dtype: DataType):
        self.var = var
        self.indices = tuple(wrap(i) for i in indices)
        self.dtype = dtype

    def children(self):
        return self.indices

    def key(self):
        return ("Load", self.var, tuple(i.key() for i in self.indices))


# ---------------------------------------------------------------------------
# Binary / unary operations
# ---------------------------------------------------------------------------


class BinOp(Expr):
    """Base class of binary operations."""

    __slots__ = ("lhs", "rhs")
    op_name = "?"

    def __init__(self, lhs: Expr, rhs: Expr, dtype: DataType | None = None):
        self.lhs = lhs
        self.rhs = rhs
        self.dtype = dtype if dtype is not None else join_dtype(
            lhs.dtype, rhs.dtype)

    def children(self):
        return (self.lhs, self.rhs)

    def key(self):
        return (type(self).__name__, self.lhs.key(), self.rhs.key())


class Add(BinOp):
    __slots__ = ()
    op_name = "+"


class Sub(BinOp):
    __slots__ = ()
    op_name = "-"


class Mul(BinOp):
    __slots__ = ()
    op_name = "*"


class RealDiv(BinOp):
    """True division; always produces a float."""

    __slots__ = ()
    op_name = "/"

    def __init__(self, lhs: Expr, rhs: Expr):
        dtype = join_dtype(lhs.dtype, rhs.dtype)
        if not dtype.is_float:
            dtype = DataType.FLOAT32
        super().__init__(lhs, rhs, dtype)


class FloorDiv(BinOp):
    __slots__ = ()
    op_name = "//"


class Mod(BinOp):
    """Python-style modulo (result has the sign of the divisor)."""

    __slots__ = ()
    op_name = "%"


class Min(BinOp):
    __slots__ = ()
    op_name = "min"


class Max(BinOp):
    __slots__ = ()
    op_name = "max"


class CmpOp(BinOp):
    """Base class of comparisons; dtype is always bool."""

    __slots__ = ()

    def __init__(self, lhs: Expr, rhs: Expr):
        super().__init__(lhs, rhs, DataType.BOOL)


class LT(CmpOp):
    __slots__ = ()
    op_name = "<"


class LE(CmpOp):
    __slots__ = ()
    op_name = "<="


class GT(CmpOp):
    __slots__ = ()
    op_name = ">"


class GE(CmpOp):
    __slots__ = ()
    op_name = ">="


class EQ(CmpOp):
    __slots__ = ()
    op_name = "=="


class NE(CmpOp):
    __slots__ = ()
    op_name = "!="


class LAnd(BinOp):
    __slots__ = ()
    op_name = "and"

    def __init__(self, lhs: Expr, rhs: Expr):
        super().__init__(lhs, rhs, DataType.BOOL)


class LOr(BinOp):
    __slots__ = ()
    op_name = "or"

    def __init__(self, lhs: Expr, rhs: Expr):
        super().__init__(lhs, rhs, DataType.BOOL)


class LNot(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand
        self.dtype = DataType.BOOL

    def children(self):
        return (self.operand,)

    def key(self):
        return ("LNot", self.operand.key())


class IfExpr(Expr):
    """``then_case if cond else else_case`` (a select, not control flow)."""

    __slots__ = ("cond", "then_case", "else_case")

    def __init__(self, cond: Expr, then_case: Expr, else_case: Expr):
        self.cond = cond
        self.then_case = then_case
        self.else_case = else_case
        self.dtype = join_dtype(then_case.dtype, else_case.dtype)

    def children(self):
        return (self.cond, self.then_case, self.else_case)

    def key(self):
        return ("IfExpr", self.cond.key(), self.then_case.key(),
                self.else_case.key())


class Cast(Expr):
    """Explicit dtype conversion."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr, dtype: DataType):
        self.operand = operand
        self.dtype = dtype

    def children(self):
        return (self.operand,)

    def key(self):
        return ("Cast", self.operand.key(), self.dtype.value)


#: Intrinsics understood by all backends and by automatic differentiation.
INTRINSICS = frozenset({
    "abs", "sqrt", "exp", "log", "sin", "cos", "tan", "tanh", "sigmoid",
    "floor", "ceil", "pow", "erf", "unbound_min", "unbound_max",
})


class Intrinsic(Expr):
    """A call to a math intrinsic (``exp``, ``sqrt``, ``abs``...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Iterable[Expr], dtype: DataType):
        if name not in INTRINSICS:
            raise ValueError(f"unknown intrinsic: {name!r}")
        self.name = name
        self.args = tuple(args)
        self.dtype = dtype

    def children(self):
        return self.args

    def key(self):
        return ("Intrinsic", self.name, tuple(a.key() for a in self.args))


class AnyExpr(Expr):
    """Wildcard used only in pattern-matching tests; matches any expression."""

    __slots__ = ()

    def __init__(self):
        self.dtype = DataType.INT32

    def key(self):
        return ("AnyExpr",)


# ---------------------------------------------------------------------------
# Construction helpers with constant folding
# ---------------------------------------------------------------------------


def wrap(value) -> Expr:
    """Convert a Python scalar to an IR constant; pass expressions through.

    Frontend 0-D tensor references convert via their ``as_load`` method
    (duck-typed to avoid a dependency cycle with the frontend package).
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, float):
        return FloatConst(value)
    as_load = getattr(value, "as_load", None)
    if as_load is not None:
        return as_load()
    raise TypeError(f"cannot convert {value!r} to an IR expression")


def wrap_like(value, dtype: DataType) -> Expr:
    """Wrap a Python scalar as a constant of a given dtype."""
    if dtype.is_float:
        return FloatConst(float(value), dtype)
    if dtype.is_bool:
        return BoolConst(bool(value))
    return IntConst(int(value), dtype)


def _const_val(e: Expr):
    return e.val if isinstance(e, Const) else None


def makeAdd(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return wrap_like(a + b, join_dtype(lhs.dtype, rhs.dtype))
    if a == 0:
        return rhs
    if b == 0:
        return lhs
    return Add(lhs, rhs)


def makeSub(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return wrap_like(a - b, join_dtype(lhs.dtype, rhs.dtype))
    if b == 0:
        return lhs
    if same_expr(lhs, rhs):
        return wrap_like(0, join_dtype(lhs.dtype, rhs.dtype))
    return Sub(lhs, rhs)


def makeMul(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return wrap_like(a * b, join_dtype(lhs.dtype, rhs.dtype))
    if a == 1:
        return rhs
    if b == 1:
        return lhs
    if (a == 0 or b == 0) and lhs.dtype.is_int and rhs.dtype.is_int:
        return wrap_like(0, join_dtype(lhs.dtype, rhs.dtype))
    return Mul(lhs, rhs)


def makeRealDiv(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None and b != 0:
        return FloatConst(a / b)
    return RealDiv(lhs, rhs)


def makeFloorDiv(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None and b != 0:
        return wrap_like(a // b, join_dtype(lhs.dtype, rhs.dtype))
    if b == 1:
        return lhs
    return FloorDiv(lhs, rhs)


def makeMod(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None and b != 0:
        return wrap_like(a % b, join_dtype(lhs.dtype, rhs.dtype))
    if b == 1:
        return wrap_like(0, join_dtype(lhs.dtype, rhs.dtype))
    return Mod(lhs, rhs)


def makeMin(lhs: Expr, rhs: Expr) -> Expr:
    lhs, rhs = wrap(lhs), wrap(rhs)
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return wrap_like(min(a, b), join_dtype(lhs.dtype, rhs.dtype))
    if same_expr(lhs, rhs):
        return lhs
    return Min(lhs, rhs)


def makeMax(lhs: Expr, rhs: Expr) -> Expr:
    lhs, rhs = wrap(lhs), wrap(rhs)
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return wrap_like(max(a, b), join_dtype(lhs.dtype, rhs.dtype))
    if same_expr(lhs, rhs):
        return lhs
    return Max(lhs, rhs)


_CMP_FOLD = {
    LT: lambda a, b: a < b,
    LE: lambda a, b: a <= b,
    GT: lambda a, b: a > b,
    GE: lambda a, b: a >= b,
    EQ: lambda a, b: a == b,
    NE: lambda a, b: a != b,
}


def makeCmp(cls, lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is not None and b is not None:
        return BoolConst(_CMP_FOLD[cls](a, b))
    if same_expr(lhs, rhs):
        return BoolConst(cls in (LE, GE, EQ))
    return cls(lhs, rhs)


def makeLAnd(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is False or b is False:
        return BoolConst(False)
    if a is True:
        return rhs
    if b is True:
        return lhs
    return LAnd(lhs, rhs)


def makeLOr(lhs: Expr, rhs: Expr) -> Expr:
    a, b = _const_val(lhs), _const_val(rhs)
    if a is True or b is True:
        return BoolConst(True)
    if a is False:
        return rhs
    if b is False:
        return lhs
    return LOr(lhs, rhs)


def makeLNot(operand: Expr) -> Expr:
    v = _const_val(operand)
    if v is not None:
        return BoolConst(not v)
    if isinstance(operand, LNot):
        return operand.operand
    return LNot(operand)


def makeIfExpr(cond: Expr, then_case: Expr, else_case: Expr) -> Expr:
    v = _const_val(cond)
    if v is True:
        return then_case
    if v is False:
        return else_case
    return IfExpr(cond, then_case, else_case)


def makeCast(operand: Expr, dtype: DataType) -> Expr:
    if operand.dtype is dtype:
        return operand
    v = _const_val(operand)
    if v is not None:
        return wrap_like(v, dtype)
    return Cast(operand, dtype)


def makeIntrinsic(name: str, args, dtype: DataType | None = None) -> Expr:
    args = [wrap(a) for a in args]
    if dtype is None:
        dtype = args[0].dtype if args else DataType.FLOAT32
        if name not in ("abs", "pow", "unbound_min", "unbound_max") \
                and not dtype.is_float:
            dtype = DataType.FLOAT32
    if all(isinstance(a, Const) for a in args):
        folded = _fold_intrinsic(name, [a.val for a in args])
        if folded is not None:
            return wrap_like(folded, dtype)
    return Intrinsic(name, args, dtype)


def _fold_intrinsic(name: str, vals):
    try:
        if name == "abs":
            return abs(vals[0])
        if name == "sqrt":
            return math.sqrt(vals[0])
        if name == "exp":
            return math.exp(vals[0])
        if name == "log":
            return math.log(vals[0])
        if name == "sin":
            return math.sin(vals[0])
        if name == "cos":
            return math.cos(vals[0])
        if name == "tan":
            return math.tan(vals[0])
        if name == "tanh":
            return math.tanh(vals[0])
        if name == "sigmoid":
            return 1.0 / (1.0 + math.exp(-vals[0]))
        if name == "floor":
            return math.floor(vals[0])
        if name == "ceil":
            return math.ceil(vals[0])
        if name == "pow":
            return vals[0]**vals[1]
        if name == "erf":
            return math.erf(vals[0])
    except (ValueError, OverflowError):
        return None
    return None


# ---------------------------------------------------------------------------
# Structural identity
# ---------------------------------------------------------------------------


def same_expr(a, b) -> bool:
    """Whether two expressions (or Python scalars) are structurally equal."""
    if not isinstance(a, Expr):
        a = wrap(a)
    if not isinstance(b, Expr):
        b = wrap(b)
    if isinstance(a, AnyExpr) or isinstance(b, AnyExpr):
        return True
    return a.key() == b.key()


def all_reads(e: Expr):
    """Yield every :class:`Load` in an expression tree."""
    if isinstance(e, Load):
        yield e
    for c in e.children():
        yield from all_reads(c)


def all_vars(e: Expr):
    """Yield the name of every :class:`Var` in an expression tree."""
    if isinstance(e, Var):
        yield e.name
    for c in e.children():
        yield from all_vars(c)


def all_loaded_tensors(e: Expr):
    """Yield the name of every tensor read by an expression."""
    for load in all_reads(e):
        yield load.var

"""Visitor and mutator infrastructure over the IR.

:class:`Visitor` walks a tree read-only; :class:`Mutator` rebuilds the tree
bottom-up, preserving each statement's ``sid`` and ``label`` so schedules
applied earlier can still address statements after later transformations.
"""

from __future__ import annotations

from . import expr as E
from . import stmt as S


class Visitor:
    """Read-only traversal; override ``visit_<NodeClass>`` methods."""

    def __call__(self, node):
        return self.visit(node)

    def visit(self, node):
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        if isinstance(node, S.Stmt):
            for e in node.child_exprs():
                self.visit(e)
            for s in node.children_stmts():
                self.visit(s)
        elif isinstance(node, E.Expr):
            for c in node.children():
                self.visit(c)
        elif isinstance(node, S.Func):
            self.visit(node.body)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot visit {type(node).__name__}")


def _copy_identity(old: S.Stmt, new: S.Stmt) -> S.Stmt:
    new.sid = old.sid
    new.label = old.label
    return new


class Mutator:
    """Rebuilding traversal; override ``mutate_<NodeClass>`` methods.

    Default behaviour reconstructs every statement from mutated children
    (keeping sid/label) and returns expressions unchanged unless
    ``mutate_expr`` is overridden.
    """

    def __call__(self, node):
        if isinstance(node, S.Func):
            return S.Func(node.name, list(node.params), list(node.returns),
                          self.mutate_stmt(node.body),
                          scalar_params=list(node.scalar_params))
        if isinstance(node, S.Stmt):
            return self.mutate_stmt(node)
        return self.mutate_expr(node)

    # -- expressions ----------------------------------------------------
    def mutate_expr(self, e: E.Expr) -> E.Expr:
        method = getattr(self, "mutate_" + type(e).__name__, None)
        if method is not None:
            return method(e)
        return self.generic_mutate_expr(e)

    #: binary nodes are rebuilt through their folding constructors so the
    #: IR stays canonical (constants folded) after every mutation
    _FOLDING = {
        E.Add: E.makeAdd,
        E.Sub: E.makeSub,
        E.Mul: E.makeMul,
        E.RealDiv: E.makeRealDiv,
        E.FloorDiv: E.makeFloorDiv,
        E.Mod: E.makeMod,
        E.Min: E.makeMin,
        E.Max: E.makeMax,
        E.LAnd: E.makeLAnd,
        E.LOr: E.makeLOr,
    }

    def generic_mutate_expr(self, e: E.Expr) -> E.Expr:
        if isinstance(e, (E.Const, E.Var, E.AnyExpr)):
            return e
        if isinstance(e, E.Load):
            idx = [self.mutate_expr(i) for i in e.indices]
            return E.Load(e.var, idx, e.dtype)
        if isinstance(e, E.CmpOp):
            return E.makeCmp(type(e), self.mutate_expr(e.lhs),
                             self.mutate_expr(e.rhs))
        if isinstance(e, E.BinOp):
            make = self._FOLDING.get(type(e))
            if make is not None:
                return make(self.mutate_expr(e.lhs), self.mutate_expr(e.rhs))
            return type(e)(self.mutate_expr(e.lhs), self.mutate_expr(e.rhs))
        if isinstance(e, E.LNot):
            return E.makeLNot(self.mutate_expr(e.operand))
        if isinstance(e, E.IfExpr):
            return E.makeIfExpr(self.mutate_expr(e.cond),
                                self.mutate_expr(e.then_case),
                                self.mutate_expr(e.else_case))
        if isinstance(e, E.Cast):
            return E.makeCast(self.mutate_expr(e.operand), e.dtype)
        if isinstance(e, E.Intrinsic):
            return E.makeIntrinsic(e.name,
                                   [self.mutate_expr(a) for a in e.args],
                                   e.dtype)
        raise TypeError(f"cannot mutate {type(e).__name__}")  # pragma: no cover

    # -- statements -------------------------------------------------------
    def mutate_stmt(self, s: S.Stmt) -> S.Stmt:
        method = getattr(self, "mutate_" + type(s).__name__, None)
        if method is not None:
            return method(s)
        return self.generic_mutate_stmt(s)

    def generic_mutate_stmt(self, s: S.Stmt) -> S.Stmt:
        if isinstance(s, S.StmtSeq):
            return _copy_identity(
                s, S.StmtSeq([self.mutate_stmt(c) for c in s.stmts]))
        if isinstance(s, S.VarDef):
            out = S.VarDef(s.name, [self.mutate_expr(d) for d in s.shape],
                           s.dtype, s.atype, s.mtype, self.mutate_stmt(s.body),
                           s.pinned)
            out.init_data = s.init_data
            return _copy_identity(s, out)
        if isinstance(s, S.For):
            return _copy_identity(
                s,
                S.For(s.iter_var, self.mutate_expr(s.begin),
                      self.mutate_expr(s.end), self.mutate_stmt(s.body),
                      s.property.clone()))
        if isinstance(s, S.If):
            else_case = (self.mutate_stmt(s.else_case)
                         if s.else_case is not None else None)
            return _copy_identity(
                s,
                S.If(self.mutate_expr(s.cond), self.mutate_stmt(s.then_case),
                     else_case))
        if isinstance(s, S.Store):
            return _copy_identity(
                s,
                S.Store(s.var, [self.mutate_expr(i) for i in s.indices],
                        self.mutate_expr(s.expr)))
        if isinstance(s, S.ReduceTo):
            return _copy_identity(
                s,
                S.ReduceTo(s.var, [self.mutate_expr(i) for i in s.indices],
                           s.op, self.mutate_expr(s.expr), s.atomic))
        if isinstance(s, S.Eval):
            return _copy_identity(s, S.Eval(self.mutate_expr(s.expr)))
        if isinstance(s, S.Assert):
            return _copy_identity(
                s, S.Assert(self.mutate_expr(s.cond), self.mutate_stmt(s.body)))
        if isinstance(s, (S.Alloc, S.Free, S.Any)):
            return s
        if isinstance(s, S.LibCall):
            return s
        raise TypeError(f"cannot mutate {type(s).__name__}")  # pragma: no cover


class ExprMutator(Mutator):
    """A mutator that rewrites expressions with a single callable."""

    def __init__(self, fn):
        self._fn = fn

    def mutate_expr(self, e: E.Expr) -> E.Expr:
        out = self._fn(e)
        if out is not None:
            return out
        return self.generic_mutate_expr(e)


def map_exprs(node, fn):
    """Rewrite every expression in ``node`` with ``fn``.

    ``fn(expr)`` may return a replacement expression or ``None`` to recurse
    into the expression's children.
    """
    return ExprMutator(fn)(node)
